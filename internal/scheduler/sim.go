package scheduler

import (
	"fmt"
	"time"

	"autocomp/internal/sim"
)

// RunSim drains the pool on a discrete-event queue: workers are modeled
// job slots, service times come from Config.ServiceTime, and every
// dispatch, commit, and backoff retry is an event on q. The pool's clock
// must be q's clock. The run is fully deterministic: the same submitted
// plan, config, and seed produce byte-identical stats and results.
//
// Other processes (live writers racing the compactor, metric samplers)
// may schedule their own events on q before or during the run; they
// interleave with scheduler events in timestamp order.
func RunSim(p *Pool, q *sim.EventQueue) Stats {
	if p.clock != Clock(q.Clock()) {
		panic("scheduler: RunSim requires the pool to share the event queue's clock")
	}
	s := &simDriver{p: p, q: q, idle: p.cfg.Workers}
	// Late submissions (an event feeding the pool mid-run) re-kick the
	// dispatch loop even when every worker sits idle at that moment.
	p.notify = s.kick
	defer func() { p.notify = nil }()
	s.kick()
	q.RunAll()
	if !p.Idle() {
		// Every queued job is either dispatchable, backoff-delayed (a
		// wake event exists), or budget-deferred on sight — an empty
		// event queue with work left means the driver lost an event.
		panic(fmt.Sprintf("scheduler: event queue drained with %d jobs pending, %d running",
			len(p.pending), p.running))
	}
	return p.finalize()
}

type simDriver struct {
	p    *Pool
	q    *sim.EventQueue
	idle int
	// wakeAt dedups backoff wake events.
	wakeAt time.Duration
}

// kick dispatches jobs onto idle workers until none is runnable, then —
// if jobs are only blocked on backoff windows — arms a wake event at the
// earliest expiry.
func (s *simDriver) kick() {
	now := s.q.Clock().Now()
	var earliest time.Duration
	for s.idle > 0 {
		j, er := s.p.next(now)
		if er > 0 && (earliest == 0 || er < earliest) {
			earliest = er
		}
		if j == nil {
			break
		}
		s.idle--
		s.p.dispatch(j, now)
		d := s.p.serviceTime(j)
		s.q.ScheduleAfter(d, func() { s.complete(j) })
	}
	if s.idle > 0 && earliest > 0 && (s.wakeAt == 0 || earliest < s.wakeAt || s.wakeAt <= now) {
		s.wakeAt = earliest
		s.q.ScheduleAt(earliest, s.kick)
	}
}

// complete fires when a job's service time elapses: the job commits (or
// aborts and re-queues with backoff), its worker frees, and the freed
// slot immediately pulls more work.
func (s *simDriver) complete(j *Job) {
	now := s.q.Clock().Now()
	s.p.commit(j, now)
	s.idle++
	s.kick()
}
