package scheduler

import (
	"sync"
	"time"

	"autocomp/internal/core"
)

// RunReal drains the pool with Config.Workers goroutines on the pool's
// clock (normally a WallClock). work, when non-nil, is the job's actual
// execution body and runs outside the pool lock — this is where a real
// deployment performs the rewrite I/O; the commit (staleness check plus
// Runner.Run) happens under the lock, so commits serialize exactly like
// optimistic commits against a single catalog endpoint while execution
// overlaps freely.
//
// The queue, lease, budget, retry, and backpressure semantics are the
// same state machine RunSim drives; only the element of time differs.
//
// The pool must be built on a *WallClock — backoff timers are armed in
// wall time, so a virtual clock would deadlock the first retry — and all
// submissions must happen before the call: unlike RunSim, the pool is
// not safe to feed while worker goroutines are draining it.
func RunReal(p *Pool, work func(*core.Candidate)) Stats {
	if _, ok := p.clock.(*WallClock); !ok {
		panic("scheduler: RunReal requires a pool built on a WallClock")
	}
	var (
		mu   sync.Mutex
		cond = sync.Cond{L: &mu}
		// wakeAt dedups backoff wake-up timers.
		wakeAt time.Duration
		wg     sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		for {
			if p.Idle() {
				cond.Broadcast()
				return
			}
			now := p.clock.Now()
			j, earliest := p.next(now)
			if j == nil {
				if p.Idle() {
					// next() can drain the pool itself: shard-budget
					// backpressure defers pending jobs on sight, and the
					// last deferral may leave nobody to broadcast.
					cond.Broadcast()
					return
				}
				if earliest > now && (wakeAt <= now || earliest < wakeAt) {
					wakeAt = earliest
					time.AfterFunc(earliest-now, func() {
						mu.Lock()
						cond.Broadcast()
						mu.Unlock()
					})
				}
				cond.Wait()
				continue
			}
			p.dispatch(j, now)
			mu.Unlock()
			if work != nil {
				work(j.Candidate)
			}
			mu.Lock()
			p.commit(j, p.clock.Now())
			cond.Broadcast()
		}
	}

	for i := 0; i < p.cfg.Workers; i++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	return p.finalize()
}
