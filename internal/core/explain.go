package core

import (
	"fmt"
	"sort"
	"strings"

	"autocomp/internal/metrics"
)

// Explainability (NFR2): deterministic decisions are only half the story —
// operators debugging a large deployment need to see *why* a candidate
// was (not) selected. Explain renders the decision funnel and the ranked
// candidates with their traits and scores.

// Explain renders a human-readable account of the decision: the funnel of
// pool sizes through the filter points, then the top candidates with
// their trait values, scores, and whether they were selected. maxRows
// bounds the candidate listing (0 = 20).
func (d *Decision) Explain(maxRows int) string {
	if maxRows <= 0 {
		maxRows = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "decision at t=%v\n", d.At)
	fmt.Fprintf(&b, "funnel: %d generated -> %d after pre-filters -> %d after stats filters -> %d after trait filters -> %d selected\n",
		d.Generated, d.AfterPreFilters, d.AfterStatsFilter, d.AfterTraitFilter, len(d.Selected))

	selected := make(map[*Candidate]bool, len(d.Selected))
	for _, c := range d.Selected {
		selected[c] = true
	}

	// Collect the union of trait names across ranked candidates for
	// stable columns.
	traitNames := map[string]bool{}
	for _, c := range d.Ranked {
		for name := range c.Traits {
			traitNames[name] = true
		}
	}
	names := make([]string, 0, len(traitNames))
	for name := range traitNames {
		names = append(names, name)
	}
	sort.Strings(names)

	headers := append([]string{"#", "Candidate", "Action", "Scope", "Score"}, names...)
	headers = append(headers, "Selected")
	var rows [][]string
	for i, c := range d.Ranked {
		if i >= maxRows {
			break
		}
		row := []string{
			fmt.Sprintf("%d", i+1),
			c.ID(),
			c.Action.String(),
			c.Scope.String(),
			fmt.Sprintf("%.4f", c.Score),
		}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.3f", c.Trait(name)))
		}
		mark := ""
		if selected[c] {
			mark = "yes"
		}
		row = append(row, mark)
		rows = append(rows, row)
	}
	b.WriteString(metrics.RenderTable(headers, rows))
	if len(d.Ranked) > maxRows {
		fmt.Fprintf(&b, "... and %d more ranked candidates\n", len(d.Ranked)-maxRows)
	}

	// Execution plan shape.
	if len(d.Plan) > 0 {
		fmt.Fprintf(&b, "plan: %d round(s):", len(d.Plan))
		for _, round := range d.Plan {
			fmt.Fprintf(&b, " [%d]", len(round))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders one line per executed result, for operator logs.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle: %d selected, %d files reduced, %s rewritten, %.3f GBHr, %d conflicts, %d skipped, %d errors\n",
		len(r.Decision.Selected), r.FilesReduced,
		metrics.FormatBytes(r.BytesRewritten), r.ActualGBHr,
		r.Conflicts, r.Skipped, r.Errors)
	for _, cr := range r.Results {
		status := "ok"
		switch {
		case cr.Result.Conflict:
			status = fmt.Sprintf("conflict(%d groups)", cr.Result.ConflictCount)
		case cr.Result.Err != nil:
			status = "error"
		case cr.Result.Skipped:
			status = "skipped"
		}
		fmt.Fprintf(&b, "  %-40s %-18s est ΔF %6.0f actual %6d  %.3f GBHr\n",
			cr.Candidate.ID(), status, cr.EstimatedReduction,
			cr.Result.Reduction(), cr.Result.GBHr)
	}
	return b.String()
}
