package core

import (
	"strings"
	"testing"
	"time"
)

func TestDecisionExplain(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "frag", false, []partLayout{{"", 20, 10 * mb}})
	l.addTable(t, "db1", "healthy", false, []partLayout{{"", 2, 600 * mb}})
	l.clock.Advance(time.Hour)
	svc := buildService(t, l, TopK{K: 1})
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	out := d.Explain(10)
	for _, want := range []string{
		"funnel:", "2 generated", "1 selected",
		"db1.frag", "file_count_reduction", "yes", "plan: 1 round(s)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// The filtered healthy table does not appear in the ranking.
	if strings.Contains(out, "db1.healthy") {
		t.Fatalf("filtered candidate listed:\n%s", out)
	}
}

func TestDecisionExplainTruncates(t *testing.T) {
	l := newLake(t)
	for i := 0; i < 8; i++ {
		l.addTable(t, "db1", "t"+itoa(i), false, []partLayout{{"", 5, 10 * mb}})
	}
	l.clock.Advance(time.Hour)
	svc := buildService(t, l, TopK{K: 2})
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	out := d.Explain(3)
	if !strings.Contains(out, "and 5 more ranked candidates") {
		t.Fatalf("truncation note missing:\n%s", out)
	}
}

func TestReportSummary(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "frag", false, []partLayout{{"", 20, 10 * mb}})
	l.clock.Advance(time.Hour)
	svc := buildService(t, l, TopK{K: 5})
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Summary()
	for _, want := range []string{"files reduced", "db1.frag", "ok", "GBHr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
