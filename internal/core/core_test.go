package core

import (
	"testing"
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/compaction"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

const (
	mb     = storage.MB
	target = 512 * storage.MB
)

// lake is a small simulated lake used across core tests.
type lake struct {
	clock *sim.Clock
	fs    *storage.NameNode
	cp    *catalog.ControlPlane
	comp  *cluster.Cluster
	exec  *compaction.Executor
}

func newLake(t *testing.T) *lake {
	t.Helper()
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	cp := catalog.New(fs, clock)
	comp := cluster.New(cluster.CompactionClusterConfig(), clock)
	return &lake{
		clock: clock,
		fs:    fs,
		cp:    cp,
		comp:  comp,
		exec: &compaction.Executor{
			Cluster:        comp,
			TargetFileSize: target,
			AppPrefix:      "compaction/",
		},
	}
}

// addTable creates db.name with the given per-partition small-file
// layout: parts maps partition → (count, size).
type partLayout struct {
	part  string
	count int
	size  int64
}

func (l *lake) addTable(t *testing.T, db, name string, partitioned bool, layouts []partLayout) *lst.Table {
	t.Helper()
	if _, err := l.cp.CreateDatabase(db, "tenant", 0); err != nil && err.Error() != "catalog: database already exists: "+db {
		// Ignore duplicate-database errors from repeated calls.
		_ = err
	}
	cfg := lst.TableConfig{Name: name}
	if partitioned {
		cfg.Spec = lst.PartitionSpec{Column: "d", Transform: lst.TransformMonth}
	}
	tbl, err := l.cp.CreateTable(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var specs []lst.FileSpec
	for _, pl := range layouts {
		for i := 0; i < pl.count; i++ {
			specs = append(specs, lst.FileSpec{Partition: pl.part, SizeBytes: pl.size, RowCount: pl.size / 100})
		}
	}
	if len(specs) > 0 {
		if _, err := tbl.AppendFiles(specs); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func (l *lake) connector() Connector { return CatalogConnector{CP: l.cp} }

func (l *lake) observer() StatsObserver {
	return StatsObserver{
		TargetFileSize: target,
		Quota:          l.cp.QuotaUtilization,
		Now:            l.clock.Now,
	}
}

// --- generators ---

func TestTableScopeGenerator(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", false, []partLayout{{"", 3, 10 * mb}})
	l.addTable(t, "db1", "b", true, []partLayout{{"p1", 2, 10 * mb}, {"p2", 2, 10 * mb}})
	cands := TableScopeGenerator{}.Candidates(l.connector().Tables())
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Scope != ScopeTable || cands[0].ID() != "db1.a" {
		t.Fatalf("cand = %+v", cands[0])
	}
}

func TestPartitionScopeGenerator(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "b", true, []partLayout{{"p1", 2, 10 * mb}, {"p2", 2, 10 * mb}})
	cands := PartitionScopeGenerator{}.Candidates(l.connector().Tables())
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Scope != ScopePartition || cands[0].ID() != "db1.b/p1" {
		t.Fatalf("cand = %v", cands[0].ID())
	}
}

func TestHybridScopeGenerator(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", false, []partLayout{{"", 3, 10 * mb}})
	l.addTable(t, "db1", "b", true, []partLayout{{"p1", 2, 10 * mb}, {"p2", 2, 10 * mb}})
	cands := HybridScopeGenerator{}.Candidates(l.connector().Tables())
	// a → table scope; b → two partition scopes.
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	scopes := map[string]Scope{}
	for _, c := range cands {
		scopes[c.ID()] = c.Scope
	}
	if scopes["db1.a"] != ScopeTable || scopes["db1.b/p1"] != ScopePartition {
		t.Fatalf("scopes = %v", scopes)
	}
}

func TestSnapshotScopeGenerator(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, []partLayout{{"", 3, 10 * mb}})
	l.clock.Advance(2 * time.Hour)
	tbl.AppendFiles([]lst.FileSpec{{SizeBytes: 5 * mb, RowCount: 1}})
	g := SnapshotScopeGenerator{Window: time.Hour, Now: l.clock.Now}
	cands := g.Candidates(l.connector().Tables())
	if len(cands) != 1 || cands[0].Scope != ScopeSnapshot {
		t.Fatalf("cands = %+v", cands)
	}
	fresh := cands[0].Files()
	if len(fresh) != 1 || fresh[0].SizeBytes != 5*mb {
		t.Fatalf("fresh files = %+v", fresh)
	}
}

func TestMultiGenerator(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", true, []partLayout{{"p1", 1, 10 * mb}})
	g := MultiGenerator{TableScopeGenerator{}, PartitionScopeGenerator{}}
	cands := g.Candidates(l.connector().Tables())
	if len(cands) != 2 {
		t.Fatalf("multi candidates = %d", len(cands))
	}
}

// --- observe & filters ---

func TestStatsObserver(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", true, []partLayout{
		{"p1", 4, 10 * mb},
		{"p2", 1, 600 * mb},
	})
	l.clock.Advance(time.Hour)
	cands := TableScopeGenerator{}.Candidates(l.connector().Tables())
	stats, err := l.observer().Observe(cands[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.FileCount != 5 || stats.SmallFiles != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.SmallBytes != 40*mb || stats.TotalBytes != 640*mb {
		t.Fatalf("bytes = %+v", stats)
	}
	if stats.TableAge != time.Hour {
		t.Fatalf("age = %v", stats.TableAge)
	}
	if len(stats.FileSizes) != 5 {
		t.Fatalf("file sizes = %d", len(stats.FileSizes))
	}
}

func TestObserverPartitionScope(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", true, []partLayout{
		{"p1", 4, 10 * mb},
		{"p2", 7, 10 * mb},
	})
	cands := PartitionScopeGenerator{}.Candidates(l.connector().Tables())
	s0, _ := l.observer().Observe(cands[0])
	if s0.FileCount != 4 {
		t.Fatalf("p1 stats = %+v", s0)
	}
}

func TestPrecomputedObserver(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", false, []partLayout{{"", 2, 10 * mb}})
	cands := TableScopeGenerator{}.Candidates(l.connector().Tables())
	po := PrecomputedObserver{ByID: map[string]Stats{"db1.a": {FileCount: 42, SmallFiles: 41}}}
	s, err := po.Observe(cands[0])
	if err != nil || s.FileCount != 42 {
		t.Fatalf("precomputed = %+v, %v", s, err)
	}
	// Fallback path.
	po2 := PrecomputedObserver{Fallback: l.observer()}
	s2, _ := po2.Observe(cands[0])
	if s2.FileCount != 2 {
		t.Fatalf("fallback = %+v", s2)
	}
	// No entry, no fallback → zero stats.
	po3 := PrecomputedObserver{}
	s3, _ := po3.Observe(cands[0])
	if s3.FileCount != 0 {
		t.Fatal("empty observer returned stats")
	}
}

func TestFilters(t *testing.T) {
	l := newLake(t)
	young := l.addTable(t, "db1", "young", false, []partLayout{{"", 5, 10 * mb}})
	l.clock.Advance(48 * time.Hour)
	old := l.addTable(t, "db1", "old", false, []partLayout{{"", 5, 10 * mb}})
	_ = young
	_ = old

	cands := TableScopeGenerator{}.Candidates(l.connector().Tables())
	for _, c := range cands {
		s, _ := l.observer().Observe(c)
		c.Stats = s
	}

	// MinTableAge drops the fresh table ("old" was created at t=48h and
	// last written then; "young" at t=0).
	kept := applyFilters(cands, []Filter{MinTableAge{Min: 24 * time.Hour, Now: l.clock.Now}})
	if len(kept) != 1 || kept[0].ID() != "db1.young" {
		t.Fatalf("age filter kept %d", len(kept))
	}

	// QuietWindow drops recently written tables.
	kept = applyFilters(cands, []Filter{QuietWindow{Min: time.Hour, Now: l.clock.Now}})
	if len(kept) != 1 || kept[0].ID() != "db1.young" {
		t.Fatalf("quiet filter kept %v", len(kept))
	}

	// MinSmallFiles.
	kept = applyFilters(cands, []Filter{MinSmallFiles{Min: 6}})
	if len(kept) != 0 {
		t.Fatalf("small-files filter kept %d", len(kept))
	}

	// MinTotalBytes.
	kept = applyFilters(cands, []Filter{MinTotalBytes{Min: 40 * mb}})
	if len(kept) != 2 {
		t.Fatalf("bytes filter kept %d", len(kept))
	}

	// FilterFunc adapter.
	kept = applyFilters(cands, []Filter{FilterFunc{FilterName: "none", Fn: func(*Candidate) bool { return false }}})
	if len(kept) != 0 {
		t.Fatal("filter func ignored")
	}
}

func TestNotIntermediateFilter(t *testing.T) {
	l := newLake(t)
	l.cp.CreateDatabase("db2", "t", 0)
	tbl, err := l.cp.CreateTable("db2", lst.TableConfig{
		Name:  "scratch",
		Props: map[string]string{"intermediate": "true"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tbl
	cands := TableScopeGenerator{}.Candidates(l.connector().Tables())
	kept := applyFilters(cands, []Filter{NotIntermediate{}})
	if len(kept) != 0 {
		t.Fatalf("intermediate not filtered: %d", len(kept))
	}
}

func TestMaxTraitValueFilter(t *testing.T) {
	c := &Candidate{Traits: map[string]float64{"compute_cost_gbhr": 100}}
	f := MaxTraitValue{TraitName: "compute_cost_gbhr", Max: 50}
	if f.Keep(c) {
		t.Fatal("over-budget candidate kept")
	}
	c.Traits["compute_cost_gbhr"] = 10
	if !f.Keep(c) {
		t.Fatal("cheap candidate dropped")
	}
}

// --- traits ---

func TestFileCountReductionTrait(t *testing.T) {
	c := &Candidate{Stats: Stats{FileCount: 10, SmallFiles: 7}}
	if v := (FileCountReduction{}).Value(c); v != 7 {
		t.Fatalf("ΔF = %v", v)
	}
	if v := (RelativeFileCountReduction{}).Value(c); v != 0.7 {
		t.Fatalf("relative ΔF = %v", v)
	}
	empty := &Candidate{}
	if v := (RelativeFileCountReduction{}).Value(empty); v != 0 {
		t.Fatalf("empty relative = %v", v)
	}
}

func TestComputeCostTrait(t *testing.T) {
	// GBHr = mem × bytes/throughput: 64 × (100GB / 200GB/hr) = 32.
	tr := ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: 200 * float64(storage.GB)}
	c := &Candidate{Stats: Stats{SmallBytes: 100 * storage.GB}}
	if v := tr.Value(c); v != 32 {
		t.Fatalf("GBHr = %v", v)
	}
	if v := (ComputeCost{}).Value(c); v != 0 {
		t.Fatalf("zero-throughput cost = %v", v)
	}
	if (ComputeCost{}).Direction() != Cost {
		t.Fatal("compute cost direction")
	}
}

func TestFileEntropyTrait(t *testing.T) {
	tr := FileEntropy{TargetFileSize: target}
	perfect := &Candidate{Stats: Stats{FileSizes: []int64{target, 2 * target}}}
	if v := tr.Value(perfect); v != 0 {
		t.Fatalf("perfect layout entropy = %v", v)
	}
	// Many tiny files → high entropy; fewer/larger → lower.
	frag := &Candidate{Stats: Stats{FileSizes: []int64{mb, mb, mb, mb}}}
	mild := &Candidate{Stats: Stats{FileSizes: []int64{400 * mb, 400 * mb}}}
	if tr.Value(frag) <= tr.Value(mild) {
		t.Fatalf("entropy ordering: frag %v <= mild %v", tr.Value(frag), tr.Value(mild))
	}
	if (FileEntropy{}).Value(frag) != 0 {
		t.Fatal("zero-target entropy should be 0")
	}
}

func TestQuotaAndDeltaTraits(t *testing.T) {
	c := &Candidate{Stats: Stats{QuotaUtilization: 0.8, DeltaFiles: 3}}
	if (QuotaPressure{}).Value(c) != 0.8 {
		t.Fatal("quota trait")
	}
	if (DeltaFileDebt{}).Value(c) != 3 {
		t.Fatal("delta trait")
	}
}

func TestTraitFunc(t *testing.T) {
	tf := TraitFunc{TraitName: "x", Dir: Cost, Fn: func(*Candidate) float64 { return 5 }}
	if tf.Name() != "x" || tf.Direction() != Cost || tf.Value(nil) != 5 {
		t.Fatal("trait func")
	}
}

func TestOrientComputesAllTraits(t *testing.T) {
	c := &Candidate{Stats: Stats{SmallFiles: 3, SmallBytes: 30 * mb, FileCount: 4}}
	orient([]*Candidate{c}, []Trait{
		FileCountReduction{},
		ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(storage.GB)},
	})
	if c.Trait("file_count_reduction") != 3 {
		t.Fatalf("traits = %v", c.Traits)
	}
	if c.Trait("compute_cost_gbhr") == 0 {
		t.Fatal("cost trait missing")
	}
}
