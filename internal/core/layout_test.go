package core

import (
	"testing"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/lst"
)

// Tests for the §8 layout-optimization and workload-awareness extensions
// flowing through the full pipeline.

func TestLayoutDebtTrait(t *testing.T) {
	c := &Candidate{Stats: Stats{UnclusteredBytes: 100}}
	if (LayoutDebt{}).Value(c) != 100 {
		t.Fatal("layout debt trait")
	}
	if (LayoutDebt{}).Direction() != Benefit {
		t.Fatal("layout debt direction")
	}
}

func TestAccessFrequencyTrait(t *testing.T) {
	c := &Candidate{Stats: Stats{Custom: map[string]float64{"read_rate": 0.4}}}
	if (AccessFrequency{}).Value(c) != 0.4 {
		t.Fatal("access frequency trait")
	}
	if (AccessFrequency{}).Value(&Candidate{}) != 0 {
		t.Fatal("missing custom stat must read 0")
	}
}

func TestObserverTracksUnclusteredBytes(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, nil)
	tbl.AppendFiles([]lst.FileSpec{
		{SizeBytes: 10 * mb, RowCount: 1},
		{SizeBytes: 20 * mb, RowCount: 1, Clustered: true},
	})
	c := &Candidate{Table: tbl, Scope: ScopeTable}
	stats, err := l.observer().Observe(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnclusteredBytes != 10*mb {
		t.Fatalf("unclustered bytes = %d", stats.UnclusteredBytes)
	}
}

// The full loop: a service whose executor clusters data ranks by layout
// debt, compacts, and afterwards the lake's layout debt is gone.
func TestServiceWithClusteringExecutor(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "hot", false, []partLayout{{"", 20, 10 * mb}})
	l.clock.Advance(time.Hour)

	zExec := &compaction.Executor{
		Cluster:        l.comp,
		TargetFileSize: target,
		ClusterData:    true,
		AppPrefix:      "layout/",
	}
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: TableScopeGenerator{},
		Observer:  l.observer(),
		Traits:    []Trait{FileCountReduction{}, LayoutDebt{}},
		Ranker: MOOPRanker{Objectives: []Objective{
			{Trait: FileCountReduction{}, Weight: 0.5},
			{Trait: LayoutDebt{}, Weight: 0.5},
		}},
		Runner: ExecutorRunner{Exec: zExec},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesReduced != 19 {
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	// Re-observe: no layout debt remains.
	tbl, _ := l.cp.Table("db1", "hot")
	c := &Candidate{Table: tbl, Scope: ScopeTable}
	stats, _ := l.observer().Observe(c)
	if stats.UnclusteredBytes != 0 {
		t.Fatalf("layout debt remains: %d bytes", stats.UnclusteredBytes)
	}
}
