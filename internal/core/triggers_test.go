package core

import (
	"testing"
	"time"

	"autocomp/internal/lst"
	"autocomp/internal/sim"
)

func TestPeriodicTriggerRuns(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", false, []partLayout{{"", 10, 10 * mb}})
	svc := buildService(t, l, TopK{K: 5})

	q := sim.NewEventQueue(l.clock)
	runs := 0
	var lastErr error
	trig := &PeriodicTrigger{
		Service: svc,
		Every:   time.Hour,
		Until:   5 * time.Hour,
		OnReport: func(rep *Report, err error) {
			runs++
			lastErr = err
		},
	}
	trig.Install(q)
	q.RunUntil(6 * time.Hour)
	if runs != 4 {
		t.Fatalf("runs = %d, want 4 (hours 1..4)", runs)
	}
	if lastErr != nil {
		t.Fatal(lastErr)
	}
	// The fragmented table was compacted on the first run; later runs
	// find nothing (diminishing returns of §2).
	tbl, _ := l.cp.Table("db1", "a")
	if tbl.FileCount() != 1 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
}

func TestPeriodicTriggerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	(&PeriodicTrigger{Every: 0}).Install(sim.NewEventQueue(sim.NewClock()))
}

func TestAfterWriteHookImmediate(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, []partLayout{{"", 10, 10 * mb}})
	hook := &AfterWriteHook{
		Observer:  l.observer(),
		Trait:     FileCountReduction{},
		Threshold: 5,
		Mode:      Immediate,
		Runner:    ExecutorRunner{Exec: l.exec},
	}
	hr, err := hook.OnWrite(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !hr.Triggered || hr.Result == nil {
		t.Fatalf("hook result = %+v", hr)
	}
	if !hr.Result.Succeeded() {
		t.Fatalf("compaction failed: %+v", hr.Result)
	}
	if tbl.FileCount() != 1 {
		t.Fatalf("file count after hook = %d", tbl.FileCount())
	}
}

func TestAfterWriteHookBelowThreshold(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, []partLayout{{"", 2, 10 * mb}})
	hook := &AfterWriteHook{
		Observer:  l.observer(),
		Trait:     FileCountReduction{},
		Threshold: 5,
		Mode:      Immediate,
		Runner:    ExecutorRunner{Exec: l.exec},
	}
	hr, err := hook.OnWrite(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Triggered {
		t.Fatal("hook triggered below threshold")
	}
	if tbl.FileCount() != 2 {
		t.Fatal("table modified below threshold")
	}
}

func TestAfterWriteHookNotifyOnly(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, []partLayout{{"", 10, 10 * mb}})
	var notified *Candidate
	hook := &AfterWriteHook{
		Observer:  l.observer(),
		Trait:     FileEntropy{TargetFileSize: target},
		Threshold: 0.5,
		Mode:      NotifyOnly,
		Notify:    func(c *Candidate) { notified = c },
	}
	hr, err := hook.OnWrite(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !hr.Triggered || notified == nil {
		t.Fatalf("notify mode: %+v", hr)
	}
	// Notify mode must not compact.
	if tbl.FileCount() != 10 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
	if notified.ID() != "db1.a" {
		t.Fatalf("notified = %v", notified.ID())
	}
}

func TestScopeStrings(t *testing.T) {
	if ScopeTable.String() != "table" || ScopePartition.String() != "partition" ||
		ScopeSnapshot.String() != "snapshot" || Scope(9).String() != "unknown" {
		t.Fatal("scope strings")
	}
}

func TestStaticConnector(t *testing.T) {
	ft := fakeTable{name: "db.t"}
	c := StaticConnector{
		TableList: []Table{ft},
		Quota:     func(db string) float64 { return 0.5 },
		Clock:     func() time.Duration { return time.Hour },
	}
	if len(c.Tables()) != 1 || c.QuotaUtilization("db") != 0.5 || c.Now() != time.Hour {
		t.Fatal("static connector")
	}
	empty := StaticConnector{}
	if empty.QuotaUtilization("x") != 0 || empty.Now() != 0 {
		t.Fatal("static connector defaults")
	}
}

func TestCandidateFilesTableScope(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", true, []partLayout{{"p1", 2, 10 * mb}, {"p2", 3, 10 * mb}})
	c := &Candidate{Table: tbl, Scope: ScopeTable}
	if got := len(c.Files()); got != 5 {
		t.Fatalf("table-scope files = %d", got)
	}
	cp := &Candidate{Table: tbl, Scope: ScopePartition, Partition: "p2"}
	if got := len(cp.Files()); got != 3 {
		t.Fatalf("partition-scope files = %d", got)
	}
	_ = lst.DataFile{}
}
