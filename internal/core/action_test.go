package core

import (
	"strings"
	"testing"

	"autocomp/internal/compaction"
)

func TestActionTypeStrings(t *testing.T) {
	want := map[ActionType]string{
		ActionDataCompaction:     "data-compaction",
		ActionSnapshotExpiry:     "snapshot-expiry",
		ActionMetadataCheckpoint: "metadata-checkpoint",
		ActionManifestRewrite:    "manifest-rewrite",
		ActionType(99):           "unknown",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if len(ActionTypes()) != 4 {
		t.Fatalf("ActionTypes() = %v", ActionTypes())
	}
}

func TestCandidateIDCarriesAction(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "t1", false, []partLayout{{"", 2, mb}})
	data := &Candidate{Table: tbl}
	if strings.Contains(data.ID(), "#") {
		t.Fatalf("data candidate id = %q", data.ID())
	}
	ckpt := &Candidate{Table: tbl, Action: ActionMetadataCheckpoint}
	if ckpt.ID() != "db1.t1#metadata-checkpoint" {
		t.Fatalf("checkpoint candidate id = %q", ckpt.ID())
	}
	// Distinct actions on one table must not collide in rankings.
	if data.ID() == ckpt.ID() {
		t.Fatal("ids collide across actions")
	}
}

func TestMetadataReductionTrait(t *testing.T) {
	c := &Candidate{Stats: Stats{MetadataReducible: 17}}
	tr := MetadataReduction{}
	if tr.Direction() != Benefit || tr.Value(c) != 17 {
		t.Fatalf("trait = %v/%v", tr.Direction(), tr.Value(c))
	}
}

func TestComputeCostIsActionAware(t *testing.T) {
	cost := ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: 1 << 30}
	c := &Candidate{Stats: Stats{SmallBytes: 1 << 30, MetadataBytes: 1 << 20}}
	dataCost := cost.Value(c)
	c.Action = ActionMetadataCheckpoint
	metaCost := cost.Value(c)
	if metaCost >= dataCost {
		t.Fatalf("metadata cost %v >= data cost %v", metaCost, dataCost)
	}
	if metaCost <= 0 {
		t.Fatalf("metadata cost = %v", metaCost)
	}
}

func TestForActionFilterScopes(t *testing.T) {
	f := ForAction{Action: ActionDataCompaction, Inner: MinSmallFiles{Min: 2}}
	starved := &Candidate{Stats: Stats{SmallFiles: 0}}
	if f.Keep(starved) {
		t.Fatal("data candidate with 0 small files kept")
	}
	starved.Action = ActionMetadataCheckpoint
	if !f.Keep(starved) {
		t.Fatal("maintenance candidate dropped by a data-only gate")
	}

	m := MinMetadataReduction{Min: 3}
	c := &Candidate{Action: ActionSnapshotExpiry, Stats: Stats{MetadataReducible: 2}}
	if m.Keep(c) {
		t.Fatal("reducible=2 kept with Min=3")
	}
	c.Stats.MetadataReducible = 3
	if !m.Keep(c) {
		t.Fatal("reducible=3 dropped with Min=3")
	}
	d := &Candidate{Action: ActionDataCompaction}
	if !m.Keep(d) {
		t.Fatal("data candidate examined by metadata gate")
	}
}

func TestReportSeparatesMetadataReduction(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "t1", false, []partLayout{{"", 2, mb}})
	rep := &Report{Decision: &Decision{}}
	rep.AddResult(&Candidate{Table: tbl, Action: ActionMetadataCheckpoint},
		compaction.Result{Table: "db1.t1", FilesRemoved: 10, FilesAdded: 1})
	rep.AddResult(&Candidate{Table: tbl},
		compaction.Result{Table: "db1.t1", FilesRemoved: 8, FilesAdded: 2})
	if rep.MetadataReduced != 9 || rep.FilesReduced != 6 {
		t.Fatalf("metadata=%d files=%d", rep.MetadataReduced, rep.FilesReduced)
	}
	counts := rep.ActionCounts()
	if counts[ActionMetadataCheckpoint] != 1 || counts[ActionDataCompaction] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
