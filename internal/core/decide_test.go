package core

import (
	"math"
	"testing"
	"testing/quick"
)

// mkCand builds a bare candidate with preset traits for ranking tests.
func mkCand(id string, traits map[string]float64) *Candidate {
	return &Candidate{
		Table:  fakeTable{name: id},
		Scope:  ScopeTable,
		Traits: traits,
		Stats:  Stats{},
	}
}

func TestThresholdPolicy(t *testing.T) {
	tr := RelativeFileCountReduction{}
	p := ThresholdPolicy{Trait: tr, Threshold: 0.1}
	cands := []*Candidate{
		mkCand("a.t1", map[string]float64{tr.Name(): 0.05}),
		mkCand("a.t2", map[string]float64{tr.Name(): 0.5}),
		mkCand("a.t3", map[string]float64{tr.Name(): 0.2}),
	}
	ranked := p.Rank(cands)
	if len(ranked) != 2 {
		t.Fatalf("passed = %d", len(ranked))
	}
	if ranked[0].ID() != "a.t2" || ranked[1].ID() != "a.t3" {
		t.Fatalf("order = %v, %v", ranked[0].ID(), ranked[1].ID())
	}
}

func TestMOOPRankerBalancesBenefitAndCost(t *testing.T) {
	benefit := FileCountReduction{}
	cost := ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: 1}
	r := MOOPRanker{Objectives: []Objective{
		{Trait: benefit, Weight: 0.7},
		{Trait: cost, Weight: 0.3},
	}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper's example (§4.2): two candidates with reductions 200 vs 100.
	// Equal costs → prefer the bigger reduction; much higher cost on the
	// first → the ratio flips.
	equalCost := []*Candidate{
		mkCand("a.big", map[string]float64{benefit.Name(): 200, cost.Name(): 50}),
		mkCand("a.small", map[string]float64{benefit.Name(): 100, cost.Name(): 50}),
		mkCand("a.zero", map[string]float64{benefit.Name(): 0, cost.Name(): 50}),
	}
	ranked := r.Rank(equalCost)
	if ranked[0].ID() != "a.big" {
		t.Fatalf("equal-cost winner = %v", ranked[0].ID())
	}
	costly := []*Candidate{
		mkCand("a.big", map[string]float64{benefit.Name(): 110, cost.Name(): 5000}),
		mkCand("a.small", map[string]float64{benefit.Name(): 100, cost.Name(): 50}),
		mkCand("a.zero", map[string]float64{benefit.Name(): 0, cost.Name(): 40}),
	}
	ranked = r.Rank(costly)
	if ranked[0].ID() != "a.small" {
		t.Fatalf("cost-aware winner = %v (scores %v %v %v)",
			ranked[0].ID(), ranked[0].Score, ranked[1].Score, ranked[2].Score)
	}
}

func TestMOOPRankerDeterministicTieBreak(t *testing.T) {
	benefit := FileCountReduction{}
	r := MOOPRanker{Objectives: []Objective{{Trait: benefit, Weight: 1}}}
	cands := []*Candidate{
		mkCand("z.t", map[string]float64{benefit.Name(): 5}),
		mkCand("a.t", map[string]float64{benefit.Name(): 5}),
		mkCand("m.t", map[string]float64{benefit.Name(): 5}),
	}
	ranked := r.Rank(cands)
	if ranked[0].ID() != "a.t" || ranked[1].ID() != "m.t" || ranked[2].ID() != "z.t" {
		t.Fatalf("tie order = %v %v %v", ranked[0].ID(), ranked[1].ID(), ranked[2].ID())
	}
}

// Property: MOOP ranking is a permutation of its input and is identical
// across repeated runs on the same input (NFR2).
func TestMOOPRankerDeterminismProperty(t *testing.T) {
	benefit := FileCountReduction{}
	cost := TraitFunc{TraitName: "c", Dir: Cost, Fn: nil}
	r := MOOPRanker{Objectives: []Objective{
		{Trait: benefit, Weight: 0.6},
		{Trait: cost, Weight: 0.4},
	}}
	f := func(vals []uint16) bool {
		var a, b []*Candidate
		for i, v := range vals {
			traits := map[string]float64{
				benefit.Name(): float64(v % 997),
				"c":            float64((v * 31) % 1013),
			}
			id := "db.t" + itoa(i)
			a = append(a, mkCand(id, traits))
			traitsCopy := map[string]float64{}
			for k, val := range traits {
				traitsCopy[k] = val
			}
			b = append(b, mkCand(id, traitsCopy))
		}
		ra, rb := r.Rank(a), r.Rank(b)
		if len(ra) != len(vals) || len(rb) != len(vals) {
			return false
		}
		for i := range ra {
			if ra[i].ID() != rb[i].ID() {
				return false
			}
			if math.IsNaN(ra[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMOOPValidate(t *testing.T) {
	b := FileCountReduction{}
	if err := (MOOPRanker{}).Validate(); err == nil {
		t.Fatal("empty objectives accepted")
	}
	if err := (MOOPRanker{Objectives: []Objective{{Trait: b, Weight: 0.5}}}).Validate(); err == nil {
		t.Fatal("weights summing to 0.5 accepted")
	}
	if err := (MOOPRanker{Objectives: []Objective{{Trait: b, Weight: -1}, {Trait: b, Weight: 2}}}).Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	ok := MOOPRanker{Objectives: []Objective{{Trait: b, Weight: 0.7}, {Trait: b, Weight: 0.3}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	dyn := MOOPRanker{
		Objectives:     []Objective{{Trait: b}, {Trait: b}},
		DynamicWeights: QuotaAdaptiveWeights(),
	}
	if err := dyn.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaAdaptiveWeights(t *testing.T) {
	w := QuotaAdaptiveWeights()
	c := &Candidate{Stats: Stats{QuotaUtilization: 0}}
	got := w(c)
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatalf("empty tenant weights = %v", got)
	}
	c.Stats.QuotaUtilization = 1
	got = w(c)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("full tenant weights = %v", got)
	}
	c.Stats.QuotaUtilization = 0.5
	got = w(c)
	if math.Abs(got[0]-0.75) > 1e-12 {
		t.Fatalf("half tenant w1 = %v", got[0])
	}
	// Clamped outside [0,1].
	c.Stats.QuotaUtilization = 2
	if got := w(c); got[0] != 1 {
		t.Fatalf("overfull tenant w1 = %v", got[0])
	}
}

func TestMOOPQuotaPressureRaisesPriority(t *testing.T) {
	benefit := FileCountReduction{}
	cost := TraitFunc{TraitName: "c", Dir: Cost}
	r := MOOPRanker{
		Objectives:     []Objective{{Trait: benefit}, {Trait: cost}},
		DynamicWeights: QuotaAdaptiveWeights(),
	}
	// Same benefit/cost traits; the candidate in the quota-squeezed
	// database must rank first because its w1 is larger.
	a := mkCand("a.t", map[string]float64{benefit.Name(): 100, "c": 100})
	a.Stats.QuotaUtilization = 0.95
	b := mkCand("b.t", map[string]float64{benefit.Name(): 100, "c": 100})
	b.Stats.QuotaUtilization = 0.05
	// Add a spread candidate so normalization is non-degenerate.
	z := mkCand("z.t", map[string]float64{benefit.Name(): 0, "c": 0})
	ranked := r.Rank([]*Candidate{b, a, z})
	if ranked[0].ID() != "a.t" {
		t.Fatalf("quota pressure ignored: first = %v", ranked[0].ID())
	}
}

func TestTopKSelector(t *testing.T) {
	cands := []*Candidate{mkCand("a.1", nil), mkCand("a.2", nil), mkCand("a.3", nil)}
	if got := (TopK{K: 2}).Select(cands); len(got) != 2 {
		t.Fatalf("topk = %d", len(got))
	}
	if got := (TopK{K: 0}).Select(cands); len(got) != 3 {
		t.Fatalf("k=0 = %d", len(got))
	}
	if got := (TopK{K: 10}).Select(cands); len(got) != 3 {
		t.Fatalf("k>n = %d", len(got))
	}
	if got := (SelectAll{}).Select(cands); len(got) != 3 {
		t.Fatal("select all")
	}
}

func TestBudgetSelectorGreedyFill(t *testing.T) {
	cost := ComputeCost{}.Name()
	cands := []*Candidate{
		mkCand("a.1", map[string]float64{cost: 60}),
		mkCand("a.2", map[string]float64{cost: 30}),
		mkCand("a.3", map[string]float64{cost: 30}),
		mkCand("a.4", map[string]float64{cost: 5}),
	}
	sel := BudgetSelector{BudgetGBHr: 100}.Select(cands)
	// 60 + 30 fit; the second 30 exceeds the remaining 10 and is
	// skipped, but the 5 fits.
	if len(sel) != 3 {
		t.Fatalf("selected = %d", len(sel))
	}
	var total float64
	for _, c := range sel {
		total += c.Trait(cost)
	}
	if total > 100 {
		t.Fatalf("budget exceeded: %v", total)
	}
	if sel[2].ID() != "a.4" {
		t.Fatalf("skip-and-continue failed: %v", sel[2].ID())
	}
}

func TestBudgetSelectorMaxK(t *testing.T) {
	cost := ComputeCost{}.Name()
	var cands []*Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, mkCand("a.t"+itoa(i), map[string]float64{cost: 1}))
	}
	sel := BudgetSelector{BudgetGBHr: 100, MaxK: 4}.Select(cands)
	if len(sel) != 4 {
		t.Fatalf("maxk = %d", len(sel))
	}
}

// Property: budget selector never exceeds its budget.
func TestBudgetSelectorNeverExceedsProperty(t *testing.T) {
	cost := ComputeCost{}.Name()
	f := func(costs []uint8, budget uint16) bool {
		var cands []*Candidate
		for i, cVal := range costs {
			cands = append(cands, mkCand("db.t"+itoa(i), map[string]float64{cost: float64(cVal)}))
		}
		sel := BudgetSelector{BudgetGBHr: float64(budget)}.Select(cands)
		var total float64
		for _, c := range sel {
			total += c.Trait(cost)
		}
		return total <= float64(budget)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
