package core

import (
	"time"

	"autocomp/internal/catalog"
)

// CatalogConnector adapts the OpenHouse-style control plane to the
// framework's Connector interface — the deployment shape of Figure 5,
// where AutoComp pulls lake state from the catalog.
type CatalogConnector struct {
	CP *catalog.ControlPlane
}

// Tables implements Connector.
func (c CatalogConnector) Tables() []Table {
	ts := c.CP.AllTables()
	out := make([]Table, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// QuotaUtilization implements Connector.
func (c CatalogConnector) QuotaUtilization(db string) float64 {
	return c.CP.QuotaUtilization(db)
}

// Now implements Connector.
func (c CatalogConnector) Now() time.Duration { return c.CP.Clock().Now() }

// StaticConnector serves a fixed table list — useful for tests and for
// synthetic fleets (NFR3).
type StaticConnector struct {
	TableList []Table
	Quota     func(db string) float64
	Clock     func() time.Duration
}

// Tables implements Connector.
func (s StaticConnector) Tables() []Table { return s.TableList }

// QuotaUtilization implements Connector.
func (s StaticConnector) QuotaUtilization(db string) float64 {
	if s.Quota == nil {
		return 0
	}
	return s.Quota(db)
}

// Now implements Connector.
func (s StaticConnector) Now() time.Duration {
	if s.Clock == nil {
		return 0
	}
	return s.Clock()
}
