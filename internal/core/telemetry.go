package core

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the decision pipeline, published to the default
// telemetry registry. Instrumentation is strictly passive: it records
// what Decide/Act did and never influences them, so scenario golden
// traces are byte-identical with or without a scraper attached.
var (
	mCycles = telemetry.Default().Counter(
		"autocomp_core_cycles_total",
		"Observe-decide cycles run (Decide calls).")
	mCycleLatency = telemetry.Default().Histogram(
		"autocomp_core_decide_latency_seconds",
		"Latency of the decide phase (generation through planning), on the configured clock (virtual under simulation).",
		telemetry.ExpBuckets(0.0005, 4, 10))
	mGenerated = telemetry.Default().Counter(
		"autocomp_core_candidates_generated_total",
		"Candidates emitted by the generator before any refinement.")
	mFiltered = telemetry.Default().CounterVec(
		"autocomp_core_candidates_filtered_total",
		"Candidates removed at each refinement point.",
		"stage")
	mRanked = telemetry.Default().Counter(
		"autocomp_core_candidates_ranked_total",
		"Candidates that reached the ranker.")
	mSelected = telemetry.Default().Counter(
		"autocomp_core_candidates_selected_total",
		"Candidates the selector admitted to the plan.")
	mObserve = telemetry.Default().Counter(
		"autocomp_core_observe_calls_total",
		"Observer invocations (cache hits included; see changefeed for misses).")
	mObserveErrors = telemetry.Default().Counter(
		"autocomp_core_observe_errors_total",
		"Observer invocations that failed and aborted the cycle.")
	mMOOPScore = telemetry.Default().GaugeVec(
		"autocomp_core_moop_selected_score",
		"MOOP objective score over the last cycle's selected candidates.",
		"stat")
	mActions = telemetry.Default().CounterVec(
		"autocomp_core_actions_total",
		"Executed candidate results folded into reports, by action type and outcome.",
		"action", "outcome")
	mFilesReduced = telemetry.Default().Counter(
		"autocomp_core_files_reduced_total",
		"Net data-file reduction achieved by executed compactions.")
	mMetadataReduced = telemetry.Default().Counter(
		"autocomp_core_metadata_reduced_total",
		"Net metadata-object reduction achieved by maintenance actions.")
	mBytesRewritten = telemetry.Default().Counter(
		"autocomp_core_bytes_rewritten_total",
		"Bytes rewritten by executed actions.")
	mGBHrSpent = telemetry.Default().Counter(
		"autocomp_core_gbhr_spent_total",
		"Compute spent by executed actions (GB-hours), wasted retry work included.")
)

// noteDecision records the funnel counts and score spread of one decision.
func noteDecision(d *Decision, wallSeconds float64) {
	mCycles.Inc()
	mCycleLatency.Observe(wallSeconds)
	mGenerated.Add(float64(d.Generated))
	mFiltered.With("pre").Add(float64(d.Generated - d.AfterPreFilters))
	mFiltered.With("stats").Add(float64(d.AfterPreFilters - d.AfterStatsFilter))
	mFiltered.With("trait").Add(float64(d.AfterStatsFilter - d.AfterTraitFilter))
	mRanked.Add(float64(len(d.Ranked)))
	mSelected.Add(float64(len(d.Selected)))
	if len(d.Selected) > 0 {
		min, max, sum := d.Selected[0].Score, d.Selected[0].Score, 0.0
		for _, c := range d.Selected {
			if c.Score < min {
				min = c.Score
			}
			if c.Score > max {
				max = c.Score
			}
			sum += c.Score
		}
		mMOOPScore.With("min").Set(min)
		mMOOPScore.With("max").Set(max)
		mMOOPScore.With("mean").Set(sum / float64(len(d.Selected)))
	}
}

// noteResult records one executed candidate result.
func noteResult(cr CandidateResult) {
	outcome := "done"
	switch {
	case cr.Result.Conflict:
		outcome = "conflicted"
	case cr.Result.Err != nil:
		outcome = "failed"
	case cr.Result.Skipped:
		outcome = "skipped"
	}
	mActions.With(cr.Candidate.Action.String(), outcome).Inc()
	mGBHrSpent.Add(cr.Result.GBHr)
	if outcome == "done" {
		mBytesRewritten.Add(float64(cr.Result.BytesRewritten))
		if cr.Candidate.Action == ActionDataCompaction {
			mFilesReduced.Add(float64(cr.Result.Reduction()))
		} else {
			mMetadataReduced.Add(float64(cr.Result.Reduction()))
		}
	}
}
