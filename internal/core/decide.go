package core

import (
	"fmt"
	"sort"

	"autocomp/internal/metrics"
)

// Ranker orders candidates for execution (the decide phase, §4.3). Rank
// sets each candidate's Score and returns candidates in descending score
// order with deterministic tie-breaking (NFR2). Candidates a policy
// rejects outright are omitted.
type Ranker interface {
	Rank(cands []*Candidate) []*Candidate
}

// ThresholdPolicy is the unconstrained-resource decision function (§4.3):
// a candidate passes when the named trait meets the threshold, and its
// score is the raw trait value. The paper's example: trigger when the
// estimated file-count reduction reaches at least 10%.
type ThresholdPolicy struct {
	Trait     Trait
	Threshold float64
}

// Rank implements Ranker.
func (p ThresholdPolicy) Rank(cands []*Candidate) []*Candidate {
	var out []*Candidate
	for _, c := range cands {
		v := c.Trait(p.Trait.Name())
		if v >= p.Threshold {
			c.Score = v
			out = append(out, c)
		}
	}
	sortByScore(out)
	return out
}

// Objective is one weighted term of the scalarized MOOP function.
type Objective struct {
	Trait Trait
	// Weight is the term's relative importance; weights must sum to 1.
	Weight float64
}

// MOOPRanker implements the resource-constrained scenario (§4.3): the
// multi-objective optimization problem is scalarized into a weighted sum
// over min-max-normalized traits,
//
//	S_c = Σ_i w_i × T'_i,c        (benefit terms add, cost terms subtract)
//
// with T'_i,c = (T_i,c − min T_i) / (max T_i − min T_i).
type MOOPRanker struct {
	Objectives []Objective
	// DynamicWeights, when set, returns per-candidate weights (summing
	// to 1) overriding the static ones — the LinkedIn deployment derives
	// w1 from quota utilization (§7).
	DynamicWeights func(c *Candidate) []float64
}

// Validate checks that weights are present and sum to 1 (±1e-6).
func (r MOOPRanker) Validate() error {
	if len(r.Objectives) == 0 {
		return fmt.Errorf("core: MOOPRanker needs at least one objective")
	}
	if r.DynamicWeights != nil {
		return nil // dynamic weights are validated per candidate
	}
	sum := 0.0
	for _, o := range r.Objectives {
		if o.Weight < 0 {
			return fmt.Errorf("core: negative weight %v for %s", o.Weight, o.Trait.Name())
		}
		sum += o.Weight
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return fmt.Errorf("core: objective weights sum to %v, want 1", sum)
	}
	return nil
}

// Rank implements Ranker.
func (r MOOPRanker) Rank(cands []*Candidate) []*Candidate {
	if len(cands) == 0 {
		return nil
	}
	// Min-max normalize each trait across the candidate set.
	norm := make([][]float64, len(r.Objectives))
	for i, o := range r.Objectives {
		raw := make([]float64, len(cands))
		for j, c := range cands {
			raw[j] = c.Trait(o.Trait.Name())
		}
		norm[i] = metrics.MinMaxNormalize(raw)
	}
	out := make([]*Candidate, len(cands))
	copy(out, cands)
	for j, c := range out {
		weights := r.weightsFor(c)
		score := 0.0
		for i, o := range r.Objectives {
			term := weights[i] * norm[i][j]
			if o.Trait.Direction() == Cost {
				score -= term
			} else {
				score += term
			}
		}
		c.Score = score
	}
	sortByScore(out)
	return out
}

func (r MOOPRanker) weightsFor(c *Candidate) []float64 {
	if r.DynamicWeights != nil {
		if w := r.DynamicWeights(c); len(w) == len(r.Objectives) {
			return w
		}
	}
	w := make([]float64, len(r.Objectives))
	for i, o := range r.Objectives {
		w[i] = o.Weight
	}
	return w
}

// QuotaAdaptiveWeights returns a DynamicWeights function for a
// two-objective MOOP (benefit, cost) implementing the paper's production
// weighting (§7):
//
//	w1 = 0.5 × (1 + UsedQuota/TotalQuota),  w2 = 1 − w1
//
// A tenant at quota gets w1 = 1 (pure benefit); an empty tenant gets
// w1 = 0.5 (balanced).
func QuotaAdaptiveWeights() func(c *Candidate) []float64 {
	return func(c *Candidate) []float64 {
		u := c.Stats.QuotaUtilization
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		w1 := 0.5 * (1 + u)
		return []float64{w1, 1 - w1}
	}
}

// sortByScore orders descending by score, breaking ties by candidate ID
// so identical inputs always produce identical rankings (NFR2).
func sortByScore(cands []*Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID() < cands[j].ID()
	})
}

// Selector picks the work units to execute from the ranked list (§4.3).
type Selector interface {
	Select(ranked []*Candidate) []*Candidate
}

// TopK selects the k highest-ranked candidates — LinkedIn's initial
// fixed-k rollout (§7: k≈10 for predictable behaviour).
type TopK struct{ K int }

// Select implements Selector.
func (s TopK) Select(ranked []*Candidate) []*Candidate {
	if s.K <= 0 || s.K >= len(ranked) {
		return ranked
	}
	return ranked[:s.K]
}

// BudgetSelector greedily fits as many high-priority candidates as
// possible within a compute budget, reading each candidate's estimated
// cost from CostTrait — the paper's dynamic-k selection (§4.3, §7:
// 226 TBHr ⇒ k≈2500). Candidates whose cost exceeds the remaining budget
// are skipped, not terminal: a cheaper lower-ranked candidate may still
// fit.
type BudgetSelector struct {
	// BudgetGBHr is the total compute budget per run.
	BudgetGBHr float64
	// CostTrait names the trait holding each candidate's estimated
	// GBHr (defaults to "compute_cost_gbhr").
	CostTrait string
	// MaxK optionally caps the number selected regardless of budget.
	MaxK int
}

// Select implements Selector.
func (s BudgetSelector) Select(ranked []*Candidate) []*Candidate {
	costName := s.CostTrait
	if costName == "" {
		costName = ComputeCost{}.Name()
	}
	var out []*Candidate
	remaining := s.BudgetGBHr
	for _, c := range ranked {
		if s.MaxK > 0 && len(out) >= s.MaxK {
			break
		}
		cost := c.Trait(costName)
		if cost > remaining {
			continue
		}
		remaining -= cost
		out = append(out, c)
	}
	return out
}

// SelectAll passes every ranked candidate through (useful with
// ThresholdPolicy, which already gates admission).
type SelectAll struct{}

// Select implements Selector.
func (SelectAll) Select(ranked []*Candidate) []*Candidate { return ranked }
