package core

import (
	"fmt"
	"sort"
)

// Ranker orders candidates for execution (the decide phase, §4.3). Rank
// sets each candidate's Score and returns candidates in descending score
// order with deterministic tie-breaking (NFR2). Candidates a policy
// rejects outright are omitted.
type Ranker interface {
	Rank(cands []*Candidate) []*Candidate
}

// ParallelRanker is a Ranker whose cross-candidate state factors into a
// cheap, exactly-mergeable per-shard summary, so ranking can fan out
// across decide shards and still produce the same scores a whole-pool
// Rank would:
//
//	stats_s := ShardStats(shard_s)            // per shard, in parallel
//	global := MergeStats([]any{stats_0, …})   // serial, cheap
//	ranked_s := RankShard(shard_s, global)    // per shard, in parallel
//
// The contract RankShard must honor: for any partition of a pool, the
// multiset of (candidate, Score) pairs across all RankShard outputs
// equals the Rank output over the whole pool, and each output is sorted
// by RankLess. The sharded decide plane (internal/decideshard) then
// k-way-merges the sorted shards into the exact serial ranking; rankers
// that cannot provide this factorization simply don't implement the
// interface and are ranked serially.
type ParallelRanker interface {
	Ranker
	// ShardStats summarizes one shard's candidates (nil when the ranker
	// needs no cross-candidate state).
	ShardStats(cands []*Candidate) any
	// MergeStats folds per-shard summaries into the global state handed
	// to every RankShard call. It must be order-independent.
	MergeStats(parts []any) any
	// RankShard scores and sorts one shard against the global state.
	RankShard(cands []*Candidate, global any) []*Candidate
}

// ThresholdPolicy is the unconstrained-resource decision function (§4.3):
// a candidate passes when the named trait meets the threshold, and its
// score is the raw trait value. The paper's example: trigger when the
// estimated file-count reduction reaches at least 10%.
type ThresholdPolicy struct {
	Trait     Trait
	Threshold float64
}

// Rank implements Ranker.
func (p ThresholdPolicy) Rank(cands []*Candidate) []*Candidate {
	return p.RankShard(cands, nil)
}

// ShardStats implements ParallelRanker: threshold admission is purely
// per-candidate, so no cross-shard statistics are needed.
func (p ThresholdPolicy) ShardStats(cands []*Candidate) any { return nil }

// MergeStats implements ParallelRanker.
func (p ThresholdPolicy) MergeStats(parts []any) any { return nil }

// RankShard implements ParallelRanker: admission and scoring depend only
// on the candidate itself, so each shard ranks independently.
func (p ThresholdPolicy) RankShard(cands []*Candidate, _ any) []*Candidate {
	var out []*Candidate
	for _, c := range cands {
		v := c.Trait(p.Trait.Name())
		if v >= p.Threshold {
			c.Score = v
			out = append(out, c)
		}
	}
	sortByScore(out)
	return out
}

// Objective is one weighted term of the scalarized MOOP function.
type Objective struct {
	Trait Trait
	// Weight is the term's relative importance; weights must sum to 1.
	Weight float64
}

// MOOPRanker implements the resource-constrained scenario (§4.3): the
// multi-objective optimization problem is scalarized into a weighted sum
// over min-max-normalized traits,
//
//	S_c = Σ_i w_i × T'_i,c        (benefit terms add, cost terms subtract)
//
// with T'_i,c = (T_i,c − min T_i) / (max T_i − min T_i).
type MOOPRanker struct {
	Objectives []Objective
	// DynamicWeights, when set, returns per-candidate weights (summing
	// to 1) overriding the static ones — the LinkedIn deployment derives
	// w1 from quota utilization (§7).
	DynamicWeights func(c *Candidate) []float64
}

// Validate checks that weights are present and sum to 1 (±1e-6).
func (r MOOPRanker) Validate() error {
	if len(r.Objectives) == 0 {
		return fmt.Errorf("core: MOOPRanker needs at least one objective")
	}
	if r.DynamicWeights != nil {
		return nil // dynamic weights are validated per candidate
	}
	sum := 0.0
	for _, o := range r.Objectives {
		if o.Weight < 0 {
			return fmt.Errorf("core: negative weight %v for %s", o.Weight, o.Trait.Name())
		}
		sum += o.Weight
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return fmt.Errorf("core: objective weights sum to %v, want 1", sum)
	}
	return nil
}

// Rank implements Ranker: one ShardStats pass over the whole pool, then
// RankShard against those bounds — the exact same arithmetic the sharded
// decide plane runs per shard, so serial and sharded scores are
// bit-identical by construction.
func (r MOOPRanker) Rank(cands []*Candidate) []*Candidate {
	if len(cands) == 0 {
		return nil
	}
	return r.RankShard(cands, r.ShardStats(cands))
}

// moopBounds carries per-objective trait extrema. Min/max merge exactly
// across shards (no accumulation, no rounding), which is what makes the
// sharded MOOP byte-identical to the serial one: the global bounds —
// and therefore every candidate's normalized terms — are the same
// float64s either way.
type moopBounds struct {
	min, max []float64
	n        int // candidates folded in; 0 = no bounds yet
}

// ShardStats implements ParallelRanker: the per-objective min/max over
// this shard's candidates, the only cross-candidate state min-max
// normalization needs.
func (r MOOPRanker) ShardStats(cands []*Candidate) any {
	b := &moopBounds{
		min: make([]float64, len(r.Objectives)),
		max: make([]float64, len(r.Objectives)),
	}
	for _, c := range cands {
		for i, o := range r.Objectives {
			v := c.Trait(o.Trait.Name())
			if b.n == 0 {
				b.min[i], b.max[i] = v, v
				continue
			}
			if v < b.min[i] {
				b.min[i] = v
			}
			if v > b.max[i] {
				b.max[i] = v
			}
		}
		b.n++
	}
	return b
}

// MergeStats implements ParallelRanker: fold per-shard bounds into the
// global ones. Order-independent and exact.
func (r MOOPRanker) MergeStats(parts []any) any {
	out := &moopBounds{
		min: make([]float64, len(r.Objectives)),
		max: make([]float64, len(r.Objectives)),
	}
	for _, p := range parts {
		b, ok := p.(*moopBounds)
		if !ok || b == nil || b.n == 0 {
			continue
		}
		if out.n == 0 {
			copy(out.min, b.min)
			copy(out.max, b.max)
			out.n = b.n
			continue
		}
		for i := range r.Objectives {
			if b.min[i] < out.min[i] {
				out.min[i] = b.min[i]
			}
			if b.max[i] > out.max[i] {
				out.max[i] = b.max[i]
			}
		}
		out.n += b.n
	}
	return out
}

// RankShard implements ParallelRanker: score this shard's candidates
// against the global bounds and sort them. Normalization follows
// metrics.MinMaxNormalize exactly — constant traits map to zero, the
// division uses halved operands so extreme spans cannot overflow, and
// the result clamps to [0,1] — so the scores match what a whole-pool
// Rank computes, bit for bit.
func (r MOOPRanker) RankShard(cands []*Candidate, global any) []*Candidate {
	if len(cands) == 0 {
		return nil
	}
	b, _ := global.(*moopBounds)
	out := make([]*Candidate, len(cands))
	copy(out, cands)
	for _, c := range out {
		weights := r.weightsFor(c)
		score := 0.0
		for i, o := range r.Objectives {
			var norm float64
			if b != nil && b.n > 0 && b.max[i] != b.min[i] {
				span := b.max[i]/2 - b.min[i]/2
				norm = (c.Trait(o.Trait.Name())/2 - b.min[i]/2) / span
				if norm < 0 {
					norm = 0
				}
				if norm > 1 {
					norm = 1
				}
			}
			term := weights[i] * norm
			if o.Trait.Direction() == Cost {
				score -= term
			} else {
				score += term
			}
		}
		c.Score = score
	}
	sortByScore(out)
	return out
}

func (r MOOPRanker) weightsFor(c *Candidate) []float64 {
	if r.DynamicWeights != nil {
		if w := r.DynamicWeights(c); len(w) == len(r.Objectives) {
			return w
		}
	}
	w := make([]float64, len(r.Objectives))
	for i, o := range r.Objectives {
		w[i] = o.Weight
	}
	return w
}

// QuotaAdaptiveWeights returns a DynamicWeights function for a
// two-objective MOOP (benefit, cost) implementing the paper's production
// weighting (§7):
//
//	w1 = 0.5 × (1 + UsedQuota/TotalQuota),  w2 = 1 − w1
//
// A tenant at quota gets w1 = 1 (pure benefit); an empty tenant gets
// w1 = 0.5 (balanced).
func QuotaAdaptiveWeights() func(c *Candidate) []float64 {
	return func(c *Candidate) []float64 {
		u := c.Stats.QuotaUtilization
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		w1 := 0.5 * (1 + u)
		return []float64{w1, 1 - w1}
	}
}

// RankLess is the ranking order: descending score, ties broken by
// candidate ID so identical inputs always produce identical rankings
// (NFR2). It is a total order whenever candidate IDs are unique — true
// for every generator configuration shipped here — which is what lets
// the sharded decide plane merge independently sorted shards into the
// exact serial ordering.
func RankLess(a, b *Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID() < b.ID()
}

// sortByScore orders by RankLess.
func sortByScore(cands []*Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		return RankLess(cands[i], cands[j])
	})
}

// Selector picks the work units to execute from the ranked list (§4.3).
type Selector interface {
	Select(ranked []*Candidate) []*Candidate
}

// TopK selects the k highest-ranked candidates — LinkedIn's initial
// fixed-k rollout (§7: k≈10 for predictable behaviour).
type TopK struct{ K int }

// Select implements Selector.
func (s TopK) Select(ranked []*Candidate) []*Candidate {
	if s.K <= 0 || s.K >= len(ranked) {
		return ranked
	}
	return ranked[:s.K]
}

// BudgetSelector greedily fits as many high-priority candidates as
// possible within a compute budget, reading each candidate's estimated
// cost from CostTrait — the paper's dynamic-k selection (§4.3, §7:
// 226 TBHr ⇒ k≈2500). Candidates whose cost exceeds the remaining budget
// are skipped, not terminal: a cheaper lower-ranked candidate may still
// fit.
type BudgetSelector struct {
	// BudgetGBHr is the total compute budget per run.
	BudgetGBHr float64
	// CostTrait names the trait holding each candidate's estimated
	// GBHr (defaults to "compute_cost_gbhr").
	CostTrait string
	// MaxK optionally caps the number selected regardless of budget.
	MaxK int
}

// Select implements Selector.
func (s BudgetSelector) Select(ranked []*Candidate) []*Candidate {
	costName := s.CostTrait
	if costName == "" {
		costName = ComputeCost{}.Name()
	}
	var out []*Candidate
	remaining := s.BudgetGBHr
	for _, c := range ranked {
		if s.MaxK > 0 && len(out) >= s.MaxK {
			break
		}
		cost := c.Trait(costName)
		if cost > remaining {
			continue
		}
		remaining -= cost
		out = append(out, c)
	}
	return out
}

// SelectAll passes every ranked candidate through (useful with
// ThresholdPolicy, which already gates admission).
type SelectAll struct{}

// Select implements Selector.
func (SelectAll) Select(ranked []*Candidate) []*Candidate { return ranked }
