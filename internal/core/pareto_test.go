package core

import (
	"testing"
	"testing/quick"
	"time"
)

func paretoObjs() []Objective {
	return []Objective{
		{Trait: FileCountReduction{}, Weight: 0.7},
		{Trait: TraitFunc{TraitName: "compute_cost_gbhr", Dir: Cost}, Weight: 0.3},
	}
}

func pc(id string, benefit, cost float64) *Candidate {
	return mkCand(id, map[string]float64{
		"file_count_reduction": benefit,
		"compute_cost_gbhr":    cost,
	})
}

func TestDominates(t *testing.T) {
	objs := paretoObjs()
	better := pc("a.b", 100, 10)
	worse := pc("a.w", 50, 20)
	equal := pc("a.e", 100, 10)
	tradeoff := pc("a.t", 200, 50)

	if !dominates(better, worse, objs) {
		t.Fatal("strictly better candidate must dominate")
	}
	if dominates(worse, better, objs) {
		t.Fatal("worse candidate cannot dominate")
	}
	if dominates(better, equal, objs) || dominates(equal, better, objs) {
		t.Fatal("equal candidates must not dominate each other")
	}
	if dominates(better, tradeoff, objs) || dominates(tradeoff, better, objs) {
		t.Fatal("trade-off candidates are incomparable")
	}
}

func TestParetoFrontier(t *testing.T) {
	objs := paretoObjs()
	cands := []*Candidate{
		pc("a.cheap", 50, 5),  // frontier: cheapest
		pc("a.mid", 100, 20),  // frontier: balanced
		pc("a.big", 300, 100), // frontier: biggest benefit
		pc("a.bad", 40, 30),   // dominated by cheap and mid
		pc("a.worse", 90, 25), // dominated by mid
	}
	front := ParetoFrontier(cands, objs)
	if len(front) != 3 {
		ids := []string{}
		for _, c := range front {
			ids = append(ids, c.ID())
		}
		t.Fatalf("frontier = %v", ids)
	}
	for _, c := range front {
		if c.ID() == "a.bad" || c.ID() == "a.worse" {
			t.Fatalf("dominated candidate %s on frontier", c.ID())
		}
	}
}

func TestParetoLayers(t *testing.T) {
	objs := paretoObjs()
	cands := []*Candidate{
		pc("a.f1", 100, 10),
		pc("a.f2", 200, 30),
		pc("a.l1", 90, 15),  // dominated by f1
		pc("a.l2", 180, 40), // dominated by f2
		pc("a.l3", 80, 20),  // dominated by f1 and l1
	}
	layers := ParetoLayers(cands, objs)
	if len(layers) != 3 {
		t.Fatalf("layers = %d", len(layers))
	}
	if len(layers[0]) != 2 || len(layers[1]) != 2 || len(layers[2]) != 1 {
		t.Fatalf("layer sizes = %d/%d/%d", len(layers[0]), len(layers[1]), len(layers[2]))
	}
}

func TestParetoRankerFrontierFirst(t *testing.T) {
	objs := paretoObjs()
	r := ParetoRanker{Objectives: objs}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cands := []*Candidate{
		pc("a.dominated", 90, 25),
		pc("a.front1", 100, 20),
		pc("a.front2", 300, 100),
	}
	ranked := r.Rank(cands)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[2].ID() != "a.dominated" {
		t.Fatalf("dominated candidate not last: %v %v %v",
			ranked[0].ID(), ranked[1].ID(), ranked[2].ID())
	}
	// Frontier members always outscore dominated ones, regardless of
	// the weighted scalarization (the §8 safeguard).
	if ranked[0].Score <= ranked[2].Score || ranked[1].Score <= ranked[2].Score {
		t.Fatalf("scores not layered: %v %v %v",
			ranked[0].Score, ranked[1].Score, ranked[2].Score)
	}
}

func TestParetoRankerEmpty(t *testing.T) {
	if got := (ParetoRanker{Objectives: paretoObjs()}).Rank(nil); got != nil {
		t.Fatal("empty rank not nil")
	}
}

// Property: the frontier is never empty for a non-empty input, no
// frontier member is dominated by any candidate, and layering is a
// permutation of the input.
func TestParetoFrontierProperty(t *testing.T) {
	objs := paretoObjs()
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var cands []*Candidate
		for i, v := range vals {
			cands = append(cands, pc("db.t"+itoa(i),
				float64(v%503), float64((v*29)%211)))
		}
		front := ParetoFrontier(cands, objs)
		if len(front) == 0 {
			return false
		}
		for _, fc := range front {
			for _, c := range cands {
				if dominates(c, fc, objs) {
					return false
				}
			}
		}
		total := 0
		for _, layer := range ParetoLayers(cands, objs) {
			total += len(layer)
		}
		return total == len(cands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every MOOP winner under any weights is on the Pareto
// frontier when its traits are unique-optimal — weaker but useful check:
// the top-ranked Pareto candidate is never dominated by the MOOP winner.
func TestParetoConsistentWithMOOP(t *testing.T) {
	objs := paretoObjs()
	cands := []*Candidate{
		pc("a.x", 120, 12),
		pc("a.y", 200, 80),
		pc("a.z", 60, 6),
		pc("a.dom", 55, 50),
	}
	moop := MOOPRanker{Objectives: objs}.Rank([]*Candidate{cands[0], cands[1], cands[2], cands[3]})
	pareto := ParetoRanker{Objectives: objs}.Rank([]*Candidate{cands[0], cands[1], cands[2], cands[3]})
	// The MOOP winner must appear within the Pareto frontier prefix.
	front := ParetoFrontier(cands, objs)
	inFront := map[string]bool{}
	for _, c := range front {
		inFront[c.ID()] = true
	}
	if !inFront[moop[0].ID()] {
		t.Fatalf("MOOP winner %s not on frontier", moop[0].ID())
	}
	if pareto[len(pareto)-1].ID() != "a.dom" {
		t.Fatalf("dominated candidate not ranked last: %v", pareto[len(pareto)-1].ID())
	}
}

func TestServiceWithParetoRanker(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "big", false, []partLayout{{"", 30, 10 * mb}})
	l.addTable(t, "db1", "small", false, []partLayout{{"", 5, 10 * mb}})
	l.clock.Advance(time.Hour)
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: TableScopeGenerator{},
		Observer:  l.observer(),
		Traits: []Trait{
			FileCountReduction{},
			ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(200 * 1 << 30)},
		},
		Ranker: ParetoRanker{Objectives: []Objective{
			{Trait: FileCountReduction{}, Weight: 0.7},
			{Trait: ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(200 * 1 << 30)}, Weight: 0.3},
		}},
		Runner: ExecutorRunner{Exec: l.exec},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesReduced != 29+4 {
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
}
