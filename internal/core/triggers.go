package core

import (
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/sim"
)

// PeriodicTrigger runs a service on a schedule — the pull-based standalone
// deployment of §5 (and the paper's production setup: once daily, §7).
type PeriodicTrigger struct {
	Service *Service
	Every   time.Duration
	// Until bounds the schedule (exclusive).
	Until time.Duration
	// OnReport receives each cycle's report (may be nil).
	OnReport func(*Report, error)
}

// Install schedules the trigger on an event queue; the first run fires
// one period from now.
func (p *PeriodicTrigger) Install(q *sim.EventQueue) {
	if p.Every <= 0 {
		panic("core: PeriodicTrigger.Every must be positive")
	}
	q.ScheduleEvery(p.Every, p.Until, func() {
		rep, err := p.Service.RunOnce()
		if p.OnReport != nil {
			p.OnReport(rep, err)
		}
	})
}

// HookMode selects what an optimize-after-write hook does when a trait
// crosses its threshold (§5).
type HookMode int

// Hook modes.
const (
	// Immediate triggers compaction right away, keeping the table
	// optimal at the price of an unbounded compaction budget.
	Immediate HookMode = iota
	// NotifyOnly decouples the hook from scheduling: it informs the
	// auto-compaction service that the candidate's traits need
	// recalculation, leaving execution to a later controlled run.
	NotifyOnly
)

// AfterWriteHook implements optimize-after-write (§5): engines call
// OnWrite after modifying a table; the hook evaluates a single trait
// against a threshold and either compacts immediately or notifies.
type AfterWriteHook struct {
	Observer  Observer
	Trait     Trait
	Threshold float64
	Mode      HookMode
	// Runner executes immediate compactions.
	Runner Runner
	// Notify receives candidates in NotifyOnly mode.
	Notify func(c *Candidate)
}

// HookResult reports one OnWrite evaluation.
type HookResult struct {
	Candidate  *Candidate
	TraitValue float64
	Triggered  bool
	// Result is set when Mode is Immediate and the hook triggered.
	Result *compaction.Result
}

// OnWrite evaluates the hook against the freshly written table.
func (h *AfterWriteHook) OnWrite(t Table) (HookResult, error) {
	c := &Candidate{Table: t, Scope: ScopeTable}
	stats, err := h.Observer.Observe(c)
	if err != nil {
		return HookResult{}, err
	}
	c.Stats = stats
	orient([]*Candidate{c}, []Trait{h.Trait})
	v := c.Trait(h.Trait.Name())
	hr := HookResult{Candidate: c, TraitValue: v}
	if v < h.Threshold {
		return hr, nil
	}
	hr.Triggered = true
	switch h.Mode {
	case Immediate:
		if h.Runner != nil {
			res := h.Runner.Run(c)
			hr.Result = &res
		}
	case NotifyOnly:
		if h.Notify != nil {
			h.Notify(c)
		}
	}
	return hr, nil
}
