package core

import (
	"fmt"
	"sync"
	"time"

	"autocomp/internal/compaction"
)

// Config wires an AutoComp pipeline. Connector, Generator, Observer,
// Traits, and Ranker are required; Selector defaults to SelectAll,
// Scheduler to SequentialScheduler. Runner is required to execute (Act /
// RunOnce) but not to Decide.
type Config struct {
	Connector Connector
	Generator Generator

	// Filters at the three optional refinement points (§3.3).
	PreFilters   []Filter // before observe (identity/metadata only)
	StatsFilters []Filter // after observe (stats available)
	TraitFilters []Filter // after orient (traits available)

	Observer Observer
	Traits   []Trait
	Ranker   Ranker
	Selector Selector

	Scheduler Scheduler
	Runner    Runner

	// OnReport hooks implement the feedback loop from act back to
	// observe (§3.3): estimator ledgers, caches, telemetry.
	OnReport []func(*Report)

	// Decider, when set, replaces the serial decide pass: Service.Decide
	// hands it the defaulted configuration and emits the decision
	// telemetry around the call. The sharded decide plane
	// (internal/decideshard) attaches here via the policy compiler's
	// decide_shards knob; nil keeps the single-goroutine pass.
	Decider Decider

	// Clock, when set, supplies the instants latency telemetry is
	// stamped with. A simulation passes its virtual clock here so the
	// latency histograms are a deterministic function of the seed
	// instead of leaking host wall time into the metric stream; nil
	// means the process wall clock.
	Clock func() time.Duration
}

// procStart anchors the wall-clock fallback for latency stamps.
var procStart = time.Now()

// clockNow returns the instant latency telemetry is stamped with: the
// configured Clock, or monotonic process wall time.
func (cfg *Config) clockNow() time.Duration {
	if cfg.Clock != nil {
		return cfg.Clock()
	}
	return time.Since(procStart)
}

// Service is a configured AutoComp instance.
type Service struct {
	cfg Config
}

// NewService validates cfg and returns a runnable service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Connector == nil {
		return nil, fmt.Errorf("core: Config.Connector is required")
	}
	if cfg.Generator == nil {
		return nil, fmt.Errorf("core: Config.Generator is required")
	}
	if cfg.Observer == nil {
		return nil, fmt.Errorf("core: Config.Observer is required")
	}
	if len(cfg.Traits) == 0 {
		return nil, fmt.Errorf("core: at least one Trait is required")
	}
	if cfg.Ranker == nil {
		return nil, fmt.Errorf("core: Config.Ranker is required")
	}
	if v, ok := cfg.Ranker.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Selector == nil {
		cfg.Selector = SelectAll{}
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = SequentialScheduler{}
	}
	return &Service{cfg: cfg}, nil
}

// Runner returns the configured runner (nil when the service can only
// Decide). External execution planes — e.g. the scheduler's worker pool —
// use it to run the selected candidates themselves.
func (s *Service) Runner() Runner { return s.cfg.Runner }

// Decision is the output of the observe–orient–decide phases: the ranked
// and selected candidates plus the execution plan, with pool sizes at
// each refinement point for explainability (NFR2).
type Decision struct {
	At time.Duration

	Generated        int
	AfterPreFilters  int
	AfterStatsFilter int
	AfterTraitFilter int

	Ranked   []*Candidate
	Selected []*Candidate
	Plan     [][]*Candidate
}

// Decide runs candidate generation, observe, orient, and decide, without
// acting. Event-driven harnesses use it to execute the plan themselves.
// When a Decider is configured it runs the decide pass; the serial path
// otherwise.
func (s *Service) Decide() (*Decision, error) {
	started := s.cfg.clockNow()
	var d *Decision
	var err error
	if s.cfg.Decider != nil {
		d, err = s.cfg.Decider(&s.cfg)
	} else {
		d, err = s.cfg.DecideSerial()
	}
	if err != nil {
		return nil, err
	}
	noteDecision(d, (s.cfg.clockNow() - started).Seconds())
	return d, nil
}

// DecideSerial is the single-goroutine decide pass over the whole pool —
// the default Decider and the parity reference for sharded engines.
func (cfg *Config) DecideSerial() (*Decision, error) {
	d := &Decision{At: cfg.Connector.Now()}

	cands := cfg.Generator.Candidates(cfg.Connector.Tables())
	d.Generated = len(cands)

	cands = applyFilters(cands, cfg.PreFilters)
	d.AfterPreFilters = len(cands)

	for _, c := range cands {
		if err := cfg.ObserveCandidate(c); err != nil {
			return nil, err
		}
	}
	cands = applyFilters(cands, cfg.StatsFilters)
	d.AfterStatsFilter = len(cands)

	orient(cands, cfg.Traits)
	cands = applyFilters(cands, cfg.TraitFilters)
	d.AfterTraitFilter = len(cands)

	d.Ranked = cfg.Ranker.Rank(cands)
	d.Selected = cfg.Selector.Select(d.Ranked)
	d.Plan = cfg.Scheduler.Plan(d.Selected)
	return d, nil
}

// ObserveCandidate runs the configured observer on one candidate,
// storing the stats and maintaining the observation telemetry — the one
// observe entry point both the serial pass and sharded engines use, so
// the counters stay consistent whichever plane decides.
func (cfg *Config) ObserveCandidate(c *Candidate) error {
	mObserve.Inc()
	stats, err := cfg.Observer.Observe(c)
	if err != nil {
		mObserveErrors.Inc()
		return fmt.Errorf("core: observe %s: %w", c.ID(), err)
	}
	c.Stats = stats
	return nil
}

// CandidateResult pairs a selected candidate with its execution result
// and the estimates the decision was based on, feeding the §7 model
// accuracy analysis.
type CandidateResult struct {
	Candidate *Candidate
	Result    compaction.Result

	EstimatedReduction float64 // file_count_reduction trait at decide time
	EstimatedGBHr      float64 // compute_cost_gbhr trait at decide time
}

// Report is the outcome of one full OODA cycle.
type Report struct {
	Decision *Decision
	Results  []CandidateResult

	FilesReduced int
	// MetadataReduced is the net metadata-object reduction achieved by
	// maintenance actions (checkpoints, expiries, manifest rewrites).
	MetadataReduced int
	BytesRewritten  int64
	ActualGBHr      float64
	Conflicts       int
	Skipped         int
	Errors          int
}

// ActionCounts tallies the executed (non-skipped, non-failed) results by
// action type — the per-cycle action breakdown operators monitor.
func (r *Report) ActionCounts() map[ActionType]int {
	out := make(map[ActionType]int)
	for _, cr := range r.Results {
		if cr.Result.Skipped || cr.Result.Err != nil || cr.Result.Conflict {
			continue
		}
		out[cr.Candidate.Action]++
	}
	return out
}

// Act executes a decision's plan with the configured Runner: rounds run
// sequentially; candidates within a round are issued back to back (their
// jobs overlap on the cluster's job slots).
func (s *Service) Act(d *Decision) (*Report, error) {
	if s.cfg.Runner == nil {
		return nil, fmt.Errorf("core: Config.Runner is required to Act")
	}
	rep := &Report{Decision: d}
	for _, round := range d.Plan {
		for _, c := range round {
			res := s.cfg.Runner.Run(c)
			rep.add(c, res)
		}
	}
	s.feedback(rep)
	return rep, nil
}

// add folds one result into the report.
func (r *Report) add(c *Candidate, res compaction.Result) {
	est := c.Trait(FileCountReduction{}.Name())
	if c.Action != ActionDataCompaction {
		est = c.Trait(MetadataReduction{}.Name())
	}
	cr := CandidateResult{
		Candidate:          c,
		Result:             res,
		EstimatedReduction: est,
		EstimatedGBHr:      c.Trait(ComputeCost{}.Name()),
	}
	r.Results = append(r.Results, cr)
	noteResult(cr)
	r.ActualGBHr += res.GBHr
	switch {
	case res.Conflict:
		r.Conflicts++
	case res.Err != nil:
		r.Errors++
	case res.Skipped:
		r.Skipped++
	case c.Action != ActionDataCompaction:
		// Maintenance runners report metadata objects removed/added in
		// the file fields; account them on the metadata axis.
		r.MetadataReduced += res.Reduction()
		r.BytesRewritten += res.BytesRewritten
	default:
		r.FilesReduced += res.Reduction()
		r.BytesRewritten += res.BytesRewritten
	}
}

// AddResult exposes result folding for harnesses that execute the plan
// themselves (two-phase ops interleaved with a workload).
func (r *Report) AddResult(c *Candidate, res compaction.Result) { r.add(c, res) }

// Feedback runs the configured feedback hooks on an externally assembled
// report (harness-executed plans).
func (s *Service) Feedback(rep *Report) { s.feedback(rep) }

func (s *Service) feedback(rep *Report) {
	for _, fn := range s.cfg.OnReport {
		fn(rep)
	}
}

// RunOnce performs one complete cycle: Decide then Act.
func (s *Service) RunOnce() (*Report, error) {
	d, err := s.Decide()
	if err != nil {
		return nil, err
	}
	return s.Act(d)
}

// EstimateRecord is one estimate-vs-actual observation.
type EstimateRecord struct {
	ID                 string
	EstimatedReduction float64
	ActualReduction    float64
	EstimatedGBHr      float64
	ActualGBHr         float64
}

// EstimatorLedger accumulates estimate-vs-actual pairs via the feedback
// loop, quantifying model accuracy as the paper does in §7 (a compaction
// estimated at 108 TBHr consumed 129 TBHr, 19% underestimation, while
// file-count reduction was overestimated by 28%).
type EstimatorLedger struct {
	mu   sync.Mutex
	recs []EstimateRecord
}

// Observe is an OnReport feedback hook.
func (l *EstimatorLedger) Observe(rep *Report) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, cr := range rep.Results {
		if cr.Result.Skipped || cr.Result.Err != nil {
			continue
		}
		l.recs = append(l.recs, EstimateRecord{
			ID:                 cr.Candidate.ID(),
			EstimatedReduction: cr.EstimatedReduction,
			ActualReduction:    float64(cr.Result.Reduction()),
			EstimatedGBHr:      cr.EstimatedGBHr,
			ActualGBHr:         cr.Result.GBHr,
		})
	}
}

// Records returns a copy of the ledger.
func (l *EstimatorLedger) Records() []EstimateRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EstimateRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// CostUnderestimationPct returns the mean percentage by which actual
// GBHr exceeded the estimate, relative to the estimate (positive =
// underestimation).
func (l *EstimatorLedger) CostUnderestimationPct() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	n := 0
	for _, r := range l.recs {
		if r.EstimatedGBHr <= 0 {
			continue
		}
		sum += (r.ActualGBHr - r.EstimatedGBHr) / r.EstimatedGBHr * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ReductionOverestimationPct returns the mean percentage by which the
// estimated file-count reduction exceeded the achieved one, relative to
// the achieved one (positive = overestimation).
func (l *EstimatorLedger) ReductionOverestimationPct() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	n := 0
	for _, r := range l.recs {
		if r.ActualReduction <= 0 {
			continue
		}
		sum += (r.EstimatedReduction - r.ActualReduction) / r.ActualReduction * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
