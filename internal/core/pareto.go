package core

import "autocomp/internal/metrics"

// This file implements the paper's §8 future direction "Navigating
// Multi-Objective Trade-offs": instead of collapsing objectives into one
// weighted score (which risks overemphasizing one metric), expose the
// Pareto frontier — the set of non-dominated candidates, where improving
// one objective necessarily worsens another — and rank by non-dominated
// sorting.

// dominates reports whether candidate a dominates b under the objectives:
// a is at least as good on every objective (higher benefit, lower cost)
// and strictly better on at least one.
func dominates(a, b *Candidate, objs []Objective) bool {
	strict := false
	for _, o := range objs {
		av, bv := a.Trait(o.Trait.Name()), b.Trait(o.Trait.Name())
		if o.Trait.Direction() == Cost {
			av, bv = -av, -bv
		}
		if av < bv {
			return false
		}
		if av > bv {
			strict = true
		}
	}
	return strict
}

// ParetoFrontier returns the non-dominated candidates under the
// objectives, in the input's relative order (deterministic).
func ParetoFrontier(cands []*Candidate, objs []Objective) []*Candidate {
	var out []*Candidate
	for i, c := range cands {
		dominated := false
		for j, other := range cands {
			if i == j {
				continue
			}
			if dominates(other, c, objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// ParetoLayers partitions candidates into non-dominated layers
// (NSGA-style non-dominated sorting): layer 0 is the Pareto frontier,
// layer 1 the frontier of the remainder, and so on.
func ParetoLayers(cands []*Candidate, objs []Objective) [][]*Candidate {
	remaining := make([]*Candidate, len(cands))
	copy(remaining, cands)
	var layers [][]*Candidate
	for len(remaining) > 0 {
		front := ParetoFrontier(remaining, objs)
		if len(front) == 0 {
			// Defensive: cannot happen (a finite set always has a
			// non-dominated element), but avoid an infinite loop.
			front = remaining
		}
		layers = append(layers, front)
		inFront := make(map[*Candidate]bool, len(front))
		for _, c := range front {
			inFront[c] = true
		}
		next := remaining[:0:0]
		for _, c := range remaining {
			if !inFront[c] {
				next = append(next, c)
			}
		}
		remaining = next
	}
	return layers
}

// ParetoRanker ranks by non-dominated sorting: frontier candidates first,
// then successive layers. Within a layer, candidates are ordered by the
// weighted scalarization (so operators still control intra-layer
// priorities), with deterministic ID tie-breaks. The resulting Score is
// layered: candidates in earlier layers always outrank later ones.
//
// Compared to MOOPRanker, no frontier solution can be displaced by a
// dominated one regardless of weight choice — the §8 safeguard against
// collapsing objectives into a single score.
type ParetoRanker struct {
	Objectives []Objective
}

// Validate checks the ranker's configuration.
func (r ParetoRanker) Validate() error {
	return MOOPRanker{Objectives: r.Objectives}.Validate()
}

// Rank implements Ranker.
func (r ParetoRanker) Rank(cands []*Candidate) []*Candidate {
	if len(cands) == 0 {
		return nil
	}
	// Scalarized sub-scores in [0, 1] for intra-layer ordering.
	norm := make([][]float64, len(r.Objectives))
	for i, o := range r.Objectives {
		raw := make([]float64, len(cands))
		for j, c := range cands {
			raw[j] = c.Trait(o.Trait.Name())
		}
		norm[i] = metrics.MinMaxNormalize(raw)
	}
	sub := make(map[*Candidate]float64, len(cands))
	for j, c := range cands {
		s := 0.0
		for i, o := range r.Objectives {
			term := o.Weight * norm[i][j]
			if o.Trait.Direction() == Cost {
				s -= term
			} else {
				s += term
			}
		}
		// Map to [0, 1).
		sub[c] = (s + 1) / 2.001
	}

	layers := ParetoLayers(cands, r.Objectives)
	var out []*Candidate
	for li, layer := range layers {
		for _, c := range layer {
			c.Score = float64(len(layers)-li) + sub[c]
		}
		sortByScore(layer)
		out = append(out, layer...)
	}
	return out
}
