package core

import (
	"time"
)

// Stats is the standardized statistics layout produced by the observe
// phase (§4.1): generic metrics every platform can provide plus custom
// metrics that may not be available everywhere.
type Stats struct {
	// Generic statistics.
	FileCount  int
	TotalBytes int64
	// SmallFiles and SmallBytes cover files below the target file size.
	SmallFiles int
	SmallBytes int64
	// FileSizes holds the candidate's file sizes (bytes), used by
	// distribution-shaped traits such as entropy.
	FileSizes []int64
	// DeltaFiles counts merge-on-read delta files awaiting merge.
	DeltaFiles int
	// UnclusteredBytes is the data volume not yet under a clustering
	// layout (feeds the §8 layout-optimization trait).
	UnclusteredBytes int64

	// Metadata-layer statistics (§2, cause iv), filled for maintenance
	// candidates by a metadata-aware observer.
	//
	// MetadataObjects and MetadataBytes cover the table's metadata files
	// (metadata.json versions, manifests, checkpoints); Snapshots is the
	// retained history length.
	MetadataObjects int
	MetadataBytes   int64
	Snapshots       int
	// MetadataReducible estimates the net metadata-object reduction the
	// candidate's action would achieve — the maintenance analogue of
	// SmallFiles for ΔF.
	MetadataReducible int

	// Custom statistics (§4.1: access patterns, usage metrics, ...).
	TableAge       time.Duration
	SinceLastWrite time.Duration
	// NewestFileAt is the add-time of the candidate's youngest file;
	// unlike SinceLastWrite it is scoped to the candidate (a partition
	// candidate only reflects writes to that partition).
	NewestFileAt     time.Duration
	WriteCount       int64
	QuotaUtilization float64
	Custom           map[string]float64
}

// Observer extracts statistics for a candidate (the observe phase).
type Observer interface {
	Observe(c *Candidate) (Stats, error)
}

// StatsObserver is the default observer: it derives the standard layout
// from the candidate's file set and the connector's quota information.
type StatsObserver struct {
	// TargetFileSize classifies small files (512 MB in the paper).
	TargetFileSize int64
	// Quota supplies per-database quota utilization; nil means 0.
	Quota func(db string) float64
	// Now supplies virtual time for age computations; nil means 0.
	Now func() time.Duration
}

// Observe implements Observer.
func (o StatsObserver) Observe(c *Candidate) (Stats, error) {
	files := c.Files()
	s := Stats{
		FileCount: len(files),
		FileSizes: make([]int64, 0, len(files)),
	}
	for _, f := range files {
		s.TotalBytes += f.SizeBytes
		s.FileSizes = append(s.FileSizes, f.SizeBytes)
		if f.SizeBytes < o.TargetFileSize {
			s.SmallFiles++
			s.SmallBytes += f.SizeBytes
		}
		if f.IsDelta {
			s.DeltaFiles++
		}
		if !f.Clustered {
			s.UnclusteredBytes += f.SizeBytes
		}
		if f.AddedAt > s.NewestFileAt {
			s.NewestFileAt = f.AddedAt
		}
	}
	now := time.Duration(0)
	if o.Now != nil {
		now = o.Now()
	}
	s.TableAge = now - c.Table.Created()
	s.SinceLastWrite = now - c.Table.LastWrite()
	s.WriteCount = c.Table.WriteCount()
	if o.Quota != nil {
		s.QuotaUtilization = o.Quota(c.Table.Database())
	}
	return s, nil
}

// PrecomputedObserver serves stats computed elsewhere (e.g. a metadata
// warehouse): useful for fleet-scale runs where touching every file is
// infeasible. Missing candidates fall back to the Fallback observer when
// set, or empty stats.
type PrecomputedObserver struct {
	ByID     map[string]Stats
	Fallback Observer
}

// Observe implements Observer.
func (o PrecomputedObserver) Observe(c *Candidate) (Stats, error) {
	if s, ok := o.ByID[c.ID()]; ok {
		return s, nil
	}
	if o.Fallback != nil {
		return o.Fallback.Observe(c)
	}
	return Stats{}, nil
}

// Filter refines the candidate pool; filters run before observe, after
// observe, and after orient (§3.3, §4.1). Keep returns false to drop the
// candidate.
type Filter interface {
	Name() string
	Keep(c *Candidate) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	FilterName string
	Fn         func(c *Candidate) bool
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Keep implements Filter.
func (f FilterFunc) Keep(c *Candidate) bool { return f.Fn(c) }

// MinTableAge drops tables created within the window — OpenHouse skips
// recently created tables to avoid spending budget on tables that do not
// affect long-term system health (§4.1).
type MinTableAge struct {
	Min time.Duration
	Now func() time.Duration
}

// Name implements Filter.
func (MinTableAge) Name() string { return "min-table-age" }

// Keep implements Filter.
func (f MinTableAge) Keep(c *Candidate) bool {
	now := time.Duration(0)
	if f.Now != nil {
		now = f.Now()
	}
	return now-c.Table.Created() >= f.Min
}

// NotIntermediate drops tables tagged as intermediate/scratch (§4.1:
// avoid redundant effort on tables created as intermediates).
type NotIntermediate struct{}

// Name implements Filter.
func (NotIntermediate) Name() string { return "not-intermediate" }

// Keep implements Filter.
func (NotIntermediate) Keep(c *Candidate) bool {
	return c.Table.Prop("intermediate") != "true"
}

// QuietWindow drops candidates whose table saw a write within Min —
// compacting a hot table invites write-write conflicts (§4.1).
type QuietWindow struct {
	Min time.Duration
	Now func() time.Duration
}

// Name implements Filter.
func (QuietWindow) Name() string { return "quiet-window" }

// Keep implements Filter.
func (f QuietWindow) Keep(c *Candidate) bool {
	now := time.Duration(0)
	if f.Now != nil {
		now = f.Now()
	}
	return now-c.Table.LastWrite() >= f.Min
}

// CandidateQuiet is a post-observe filter implementing §3.3's example:
// skip candidates that received writes within Min, to avoid conflicts
// during compaction. It uses the candidate-scoped newest-file time, so it
// composes with fine-grained work units (FR1): a hot partition is
// deferred while the rest of its table still compacts — whereas at table
// scope the filter would park every actively written table.
type CandidateQuiet struct {
	Min time.Duration
	Now func() time.Duration
}

// Name implements Filter.
func (CandidateQuiet) Name() string { return "candidate-quiet" }

// Keep implements Filter.
func (f CandidateQuiet) Keep(c *Candidate) bool {
	now := time.Duration(0)
	if f.Now != nil {
		now = f.Now()
	}
	return now-c.Stats.NewestFileAt >= f.Min
}

// MinSmallFiles is a post-observe filter: candidates with fewer small
// files than Min are not worth a compaction task.
type MinSmallFiles struct{ Min int }

// Name implements Filter.
func (MinSmallFiles) Name() string { return "min-small-files" }

// Keep implements Filter.
func (f MinSmallFiles) Keep(c *Candidate) bool { return c.Stats.SmallFiles >= f.Min }

// MinTotalBytes is a post-observe filter skipping tables that are too
// small to matter (§3.3's example filter).
type MinTotalBytes struct{ Min int64 }

// Name implements Filter.
func (MinTotalBytes) Name() string { return "min-total-bytes" }

// Keep implements Filter.
func (f MinTotalBytes) Keep(c *Candidate) bool { return c.Stats.TotalBytes >= f.Min }

// ForAction scopes an inner filter to one action type: candidates of any
// other action pass unexamined. It lets action-specific gates (e.g.
// MinSmallFiles for data compaction) coexist in a unified maintenance
// pipeline without starving the other action families.
type ForAction struct {
	Action ActionType
	Inner  Filter
}

// Name implements Filter.
func (f ForAction) Name() string { return f.Action.String() + ":" + f.Inner.Name() }

// Keep implements Filter.
func (f ForAction) Keep(c *Candidate) bool {
	if c.Action != f.Action {
		return true
	}
	return f.Inner.Keep(c)
}

// MinMetadataReduction is a post-observe filter for maintenance
// candidates: actions that would reclaim fewer than Min metadata objects
// are not worth a task. Data-compaction candidates pass unexamined.
type MinMetadataReduction struct{ Min int }

// Name implements Filter.
func (MinMetadataReduction) Name() string { return "min-metadata-reduction" }

// Keep implements Filter.
func (f MinMetadataReduction) Keep(c *Candidate) bool {
	if c.Action == ActionDataCompaction {
		return true
	}
	return c.Stats.MetadataReducible >= f.Min
}

// MaxTraitValue is a post-orient filter: candidates whose named trait
// exceeds Max are discarded — e.g. dropping work units whose compute cost
// exceeds the allocated budget (§4.2).
type MaxTraitValue struct {
	TraitName string
	Max       float64
}

// Name implements Filter.
func (f MaxTraitValue) Name() string { return "max-" + f.TraitName }

// Keep implements Filter.
func (f MaxTraitValue) Keep(c *Candidate) bool { return c.Trait(f.TraitName) <= f.Max }

// applyFilters returns the candidates every filter keeps.
// ApplyFilters keeps the candidates every filter accepts, preserving
// order — exported for external decide planes (internal/decideshard)
// that run the refinement points per shard.
func ApplyFilters(cands []*Candidate, filters []Filter) []*Candidate {
	return applyFilters(cands, filters)
}

func applyFilters(cands []*Candidate, filters []Filter) []*Candidate {
	if len(filters) == 0 {
		return cands
	}
	out := cands[:0:0]
	for _, c := range cands {
		keep := true
		for _, f := range filters {
			if !f.Keep(c) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}
