// Package core implements AutoComp, the paper's primary contribution: a
// modular framework for automatic data compaction in log-structured
// tables, organized as an Observe–Orient–Decide–Act (OODA) pipeline
// (§3.3, Figure 4):
//
//	candidates → [filter] → observe(stats) → [filter] → orient(traits)
//	           → [filter] → decide(rank + select) → act(schedule + run)
//	           → feedback
//
// Every stage is an interface so deployments can mix and match strategies
// (NFR1); all algorithms are deterministic given identical inputs (NFR2);
// and the framework talks to the lake through narrow connector interfaces
// so it is not tied to one catalog or LST implementation (NFR3).
package core

import (
	"fmt"
	"time"

	"autocomp/internal/lst"
)

// Table is the view of a log-structured table AutoComp needs. *lst.Table
// satisfies it directly; other connectors (different LSTs, synthetic
// fleets) implement it themselves (NFR3).
type Table interface {
	Database() string
	Name() string
	FullName() string
	Spec() lst.PartitionSpec
	Mode() lst.WriteMode
	Prop(key string) string
	Created() time.Duration
	LastWrite() time.Duration
	WriteCount() int64
	FileCount() int
	TotalBytes() int64
	Partitions() []string
	LiveFiles() []lst.DataFile
	FilesInPartition(partition string) []lst.DataFile
}

// Connector feeds lake state into the framework according to a consistent
// data model (§3.3).
type Connector interface {
	// Tables returns the onboarded tables in a deterministic order.
	Tables() []Table
	// QuotaUtilization returns Used/Total namespace quota for a
	// database, or 0 when unknown.
	QuotaUtilization(db string) float64
	// Now returns the current virtual time.
	Now() time.Duration
}

// ActionType classifies the maintenance action a candidate proposes. The
// original pipeline only knew data compaction; the maintenance subsystem
// generalizes it to a family of actions — snapshot expiry, metadata
// checkpointing, manifest rewriting — that all compete for the same
// compute budget in one ranking (the paper's cause (iv): per-commit
// metadata files are themselves small files).
type ActionType int

// Maintenance action types. ActionDataCompaction is the zero value so
// every pre-existing candidate path keeps its meaning unchanged.
const (
	// ActionDataCompaction rewrites small data files into target-sized
	// ones (the original AutoComp action).
	ActionDataCompaction ActionType = iota
	// ActionSnapshotExpiry drops old snapshots and the metadata objects
	// only they reference.
	ActionSnapshotExpiry
	// ActionMetadataCheckpoint collapses the metadata log (metadata.json
	// versions + manifests) into a single checkpoint object.
	ActionMetadataCheckpoint
	// ActionManifestRewrite consolidates manifests at full entry density
	// without touching the version history.
	ActionManifestRewrite
)

// String renders the action type's kebab-case name.
func (a ActionType) String() string {
	switch a {
	case ActionDataCompaction:
		return "data-compaction"
	case ActionSnapshotExpiry:
		return "snapshot-expiry"
	case ActionMetadataCheckpoint:
		return "metadata-checkpoint"
	case ActionManifestRewrite:
		return "manifest-rewrite"
	default:
		return "unknown"
	}
}

// ActionTypes lists every action type in declaration order.
func ActionTypes() []ActionType {
	return []ActionType{
		ActionDataCompaction, ActionSnapshotExpiry,
		ActionMetadataCheckpoint, ActionManifestRewrite,
	}
}

// Scope is the granularity of a compaction work unit (FR1).
type Scope int

// Candidate scopes (§4.1).
const (
	// ScopeTable covers all partitions of a table in one work unit.
	ScopeTable Scope = iota
	// ScopePartition covers a single partition.
	ScopePartition
	// ScopeSnapshot covers only recently added files, for fresh data
	// that needs frequent access.
	ScopeSnapshot
)

// String renders the scope's name.
func (s Scope) String() string {
	switch s {
	case ScopeTable:
		return "table"
	case ScopePartition:
		return "partition"
	case ScopeSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// Candidate is one proposed maintenance work unit (§4.1) — a file set to
// compact, or a table whose metadata needs maintenance — flowing through
// the pipeline and accumulating stats, traits, and a score.
type Candidate struct {
	Table Table
	// Action is the maintenance action proposed; the zero value is data
	// compaction, so plain compaction pipelines never set it.
	Action    ActionType
	Scope     Scope
	Partition string // set for ScopePartition
	// FreshSince bounds ScopeSnapshot candidates: only files added at
	// or after this virtual time belong to the work unit.
	FreshSince time.Duration

	Stats  Stats
	Traits map[string]float64
	Score  float64
}

// ID returns a stable identifier used for deterministic tie-breaking
// (NFR2) and reporting.
func (c *Candidate) ID() string {
	id := c.Table.FullName()
	switch c.Scope {
	case ScopePartition:
		id = fmt.Sprintf("%s/%s", id, c.Partition)
	case ScopeSnapshot:
		id = fmt.Sprintf("%s@fresh", id)
	}
	if c.Action != ActionDataCompaction {
		id = fmt.Sprintf("%s#%s", id, c.Action)
	}
	return id
}

// Files returns the candidate's file set according to its scope.
func (c *Candidate) Files() []lst.DataFile {
	switch c.Scope {
	case ScopePartition:
		return c.Table.FilesInPartition(c.Partition)
	case ScopeSnapshot:
		var out []lst.DataFile
		for _, f := range c.Table.LiveFiles() {
			if f.AddedAt >= c.FreshSince {
				out = append(out, f)
			}
		}
		return out
	default:
		return c.Table.LiveFiles()
	}
}

// Trait returns a computed trait value (0 when absent).
func (c *Candidate) Trait(name string) float64 { return c.Traits[name] }

// Generator produces candidates from tables (the entry of the observe
// phase). Implementations must be deterministic.
type Generator interface {
	Name() string
	Candidates(tables []Table) []*Candidate
}

// TableScopeGenerator emits one table-scope candidate per table — the
// strategy of LinkedIn's initial OpenHouse deployment (§6, §7).
type TableScopeGenerator struct{}

// Name implements Generator.
func (TableScopeGenerator) Name() string { return "table-scope" }

// Candidates implements Generator.
func (TableScopeGenerator) Candidates(tables []Table) []*Candidate {
	out := make([]*Candidate, 0, len(tables))
	for _, t := range tables {
		out = append(out, &Candidate{Table: t, Scope: ScopeTable})
	}
	return out
}

// PartitionScopeGenerator emits one candidate per live partition,
// enabling sub-table work units that can be processed independently
// (FR1).
type PartitionScopeGenerator struct{}

// Name implements Generator.
func (PartitionScopeGenerator) Name() string { return "partition-scope" }

// Candidates implements Generator.
func (PartitionScopeGenerator) Candidates(tables []Table) []*Candidate {
	var out []*Candidate
	for _, t := range tables {
		for _, p := range t.Partitions() {
			out = append(out, &Candidate{Table: t, Scope: ScopePartition, Partition: p})
		}
	}
	return out
}

// HybridScopeGenerator chooses partition scope for partitioned tables and
// table scope otherwise — the paper's hybrid strategy (§6).
type HybridScopeGenerator struct{}

// Name implements Generator.
func (HybridScopeGenerator) Name() string { return "hybrid-scope" }

// Candidates implements Generator.
func (HybridScopeGenerator) Candidates(tables []Table) []*Candidate {
	var out []*Candidate
	for _, t := range tables {
		if t.Spec().IsPartitioned() {
			for _, p := range t.Partitions() {
				out = append(out, &Candidate{Table: t, Scope: ScopePartition, Partition: p})
			}
		} else {
			out = append(out, &Candidate{Table: t, Scope: ScopeTable})
		}
	}
	return out
}

// SnapshotScopeGenerator emits candidates covering files added within
// Window of now, for workloads where (reasonably) fresh data needs more
// frequent optimization (§4.1).
type SnapshotScopeGenerator struct {
	Window time.Duration
	Now    func() time.Duration
}

// Name implements Generator.
func (SnapshotScopeGenerator) Name() string { return "snapshot-scope" }

// Candidates implements Generator.
func (g SnapshotScopeGenerator) Candidates(tables []Table) []*Candidate {
	now := time.Duration(0)
	if g.Now != nil {
		now = g.Now()
	}
	since := now - g.Window
	if since < 0 {
		since = 0
	}
	var out []*Candidate
	for _, t := range tables {
		out = append(out, &Candidate{Table: t, Scope: ScopeSnapshot, FreshSince: since})
	}
	return out
}

// MultiGenerator concatenates the output of several generators, letting a
// deployment consider a combination of scopes in one workflow (§4.1).
type MultiGenerator []Generator

// Name implements Generator.
func (m MultiGenerator) Name() string { return "multi" }

// Candidates implements Generator.
func (m MultiGenerator) Candidates(tables []Table) []*Candidate {
	var out []*Candidate
	for _, g := range m {
		out = append(out, g.Candidates(tables)...)
	}
	return out
}
