package core

import "hash/fnv"

// ShardOf returns the shard a table hashes onto: a stable fnv32a hash of
// the full table name modulo the shard count. It is the one shard
// mapping in the system — the scheduler's GBHr budget shards, the decide
// plane's candidate shards, and the changefeed's cache/tracker stripes
// all use it, so a table's budget shard and decide shard always align.
func ShardOf(fullName string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(fullName))
	return int(h.Sum32() % uint32(shards))
}

// Decider replaces the serial decide pass of Service.Decide. The hook
// receives the service's (defaulted, validated) configuration and
// returns the cycle's decision; Service.Decide still owns the decision
// telemetry around the call. A sharded decide engine attaches here
// (see internal/decideshard) — core stays free of worker-pool policy.
type Decider func(*Config) (*Decision, error)

// TableLocalGenerator marks a Generator whose output for a table list is
// the concatenation of its per-table outputs: Candidates(ts) equals
// appending Candidates({t}) over ts in order, and no candidate
// references a table outside its input. Table-local generators can be
// fanned out across decide shards by partitioning the table list; the
// built-in scope generators and the maintenance generator all qualify,
// while time-windowed or cross-table generators must not claim it.
type TableLocalGenerator interface {
	Generator
	// TableLocal reports whether the generator currently satisfies the
	// contract (composite generators answer for their members).
	TableLocal() bool
}

// GeneratorIsTableLocal reports whether g declares the table-local
// contract, enabling per-shard candidate generation.
func GeneratorIsTableLocal(g Generator) bool {
	tl, ok := g.(TableLocalGenerator)
	return ok && tl.TableLocal()
}

// ShardedGenerator is a Generator that partitions its own candidate pool
// by decide shard — stateful generators (the changefeed's retained pool)
// implement it so each shard touches only its own partition. The
// contract: with tables partitioned by ShardOf(FullName, shards),
// concatenating ShardCandidates(s, shards, partition[s]) over all s must
// emit the same candidate set as one Candidates(tables) call, and every
// emitted candidate's table must hash onto the shard that emitted it.
type ShardedGenerator interface {
	Generator
	ShardCandidates(shard, shards int, tables []Table) []*Candidate
}

// TableLocal implements TableLocalGenerator.
func (TableScopeGenerator) TableLocal() bool { return true }

// TableLocal implements TableLocalGenerator.
func (PartitionScopeGenerator) TableLocal() bool { return true }

// TableLocal implements TableLocalGenerator.
func (HybridScopeGenerator) TableLocal() bool { return true }

// TableLocal implements TableLocalGenerator: each candidate covers one
// input table; the freshness window is resolved from the clock, not from
// other tables.
func (SnapshotScopeGenerator) TableLocal() bool { return true }

// TableLocal implements TableLocalGenerator: a concatenation of
// table-local generators is table-local. Partitioning tables and
// concatenating per-shard outputs permutes the pool across shards but
// preserves the emitted set, which is all ranking needs (score plus ID
// tie-break is order-independent).
func (m MultiGenerator) TableLocal() bool {
	for _, g := range m {
		if !GeneratorIsTableLocal(g) {
			return false
		}
	}
	return true
}
