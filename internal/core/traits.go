package core

import "math"

// Direction classifies a trait as something compaction wants to maximize
// (a benefit) or minimize (a cost) (§4.2).
type Direction int

// Trait directions.
const (
	Benefit Direction = iota
	Cost
)

// Trait turns observed statistics into a decision helper for ranking
// (the orient phase, §4.2). Traits are defined independently of one
// another and can be partially combined during ranking.
type Trait interface {
	Name() string
	Direction() Direction
	Value(c *Candidate) float64
}

// FileCountReduction estimates ΔF_c, the file-count reduction compaction
// would achieve, as the number of files below the target size (§4.2):
//
//	ΔF_c = Σ_i 1[FileSize_i,c < TargetFileSize_c]
//
// Note the deliberate simplification the paper discusses in §7: at table
// scope this ignores partition boundaries and therefore overestimates,
// since compaction does not merge across partitions.
type FileCountReduction struct{}

// Name implements Trait.
func (FileCountReduction) Name() string { return "file_count_reduction" }

// Direction implements Trait.
func (FileCountReduction) Direction() Direction { return Benefit }

// Value implements Trait.
func (FileCountReduction) Value(c *Candidate) float64 {
	return float64(c.Stats.SmallFiles)
}

// RelativeFileCountReduction is ΔF_c divided by the candidate's file
// count — the "at least 10% reduction" style threshold of the paper's
// unconstrained scenario (§4.3).
type RelativeFileCountReduction struct{}

// Name implements Trait.
func (RelativeFileCountReduction) Name() string { return "relative_file_count_reduction" }

// Direction implements Trait.
func (RelativeFileCountReduction) Direction() Direction { return Benefit }

// Value implements Trait.
func (RelativeFileCountReduction) Value(c *Candidate) float64 {
	if c.Stats.FileCount == 0 {
		return 0
	}
	return float64(c.Stats.SmallFiles) / float64(c.Stats.FileCount)
}

// ComputeCost estimates the compute resources to execute candidate c
// (§4.2):
//
//	GBHr_c = ExecutorMemoryGB × DataSize_c / RewriteBytesPerHour
//
// DataSize_c is the bytes the action must rewrite: the small files for
// data compaction, the metadata log for metadata-maintenance actions —
// which is why checkpoints and expiries are orders of magnitude cheaper
// and slot easily into a shared budget.
type ComputeCost struct {
	// ExecutorMemoryGB is the memory allocated to executors for the
	// compaction task.
	ExecutorMemoryGB float64
	// RewriteBytesPerHour is the system's rewrite throughput.
	RewriteBytesPerHour float64
}

// Name implements Trait.
func (ComputeCost) Name() string { return "compute_cost_gbhr" }

// Direction implements Trait.
func (ComputeCost) Direction() Direction { return Cost }

// Value implements Trait.
func (t ComputeCost) Value(c *Candidate) float64 {
	if t.RewriteBytesPerHour <= 0 {
		return 0
	}
	bytes := c.Stats.SmallBytes
	if c.Action != ActionDataCompaction {
		bytes = c.Stats.MetadataBytes
	}
	return t.ExecutorMemoryGB * float64(bytes) / t.RewriteBytesPerHour
}

// MetadataReduction estimates ΔM_c, the net metadata-object reduction a
// maintenance action would achieve — the metadata analogue of
// FileCountReduction, ranking checkpoints, expiries, and manifest
// rewrites on the same benefit axis the paper uses for ΔF (object count
// is the scarce NameNode resource either way).
type MetadataReduction struct{}

// Name implements Trait.
func (MetadataReduction) Name() string { return "metadata_reduction" }

// Direction implements Trait.
func (MetadataReduction) Direction() Direction { return Benefit }

// Value implements Trait.
func (MetadataReduction) Value(c *Candidate) float64 {
	return float64(c.Stats.MetadataReducible)
}

// FileEntropy measures layout disorder relative to the target file size,
// modeled after the entropy trait of Netflix's AutoOptimize (§4.2, §6.3):
// the root-mean-square shortfall of undersized files, normalized by the
// target,
//
//	E_c = sqrt( Σ_{s_i < T} ((T − s_i)/T)² )
//
// It grows with both the number of small files and how far each falls
// short, and is 0 for a perfectly laid-out candidate.
type FileEntropy struct {
	TargetFileSize int64
}

// Name implements Trait.
func (FileEntropy) Name() string { return "file_entropy" }

// Direction implements Trait.
func (FileEntropy) Direction() Direction { return Benefit }

// Value implements Trait.
func (t FileEntropy) Value(c *Candidate) float64 {
	if t.TargetFileSize <= 0 {
		return 0
	}
	target := float64(t.TargetFileSize)
	var sum float64
	for _, s := range c.Stats.FileSizes {
		if s < t.TargetFileSize {
			d := (target - float64(s)) / target
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// QuotaPressure surfaces the database's namespace-quota utilization; the
// LinkedIn deployment boosts the file-count-reduction weight with it
// (§7).
type QuotaPressure struct{}

// Name implements Trait.
func (QuotaPressure) Name() string { return "quota_pressure" }

// Direction implements Trait.
func (QuotaPressure) Direction() Direction { return Benefit }

// Value implements Trait.
func (QuotaPressure) Value(c *Candidate) float64 { return c.Stats.QuotaUtilization }

// DeltaFileDebt counts merge-on-read delta files awaiting merge — a
// benefit trait for MoR-heavy workloads (§2, cause ii).
type DeltaFileDebt struct{}

// Name implements Trait.
func (DeltaFileDebt) Name() string { return "delta_file_debt" }

// Direction implements Trait.
func (DeltaFileDebt) Direction() Direction { return Benefit }

// Value implements Trait.
func (DeltaFileDebt) Value(c *Candidate) float64 { return float64(c.Stats.DeltaFiles) }

// LayoutDebt measures the data volume not yet under a clustering layout
// (Z-order/V-order style), extending compaction toward the broader layout
// optimizations of §8: co-locating related data improves compression and
// filtering efficiency, so candidates with more unclustered bytes gain
// more from a clustering rewrite. Pair it with a clustering-enabled
// compaction executor in the act phase.
type LayoutDebt struct{}

// Name implements Trait.
func (LayoutDebt) Name() string { return "layout_debt_bytes" }

// Direction implements Trait.
func (LayoutDebt) Direction() Direction { return Benefit }

// Value implements Trait.
func (LayoutDebt) Value(c *Candidate) float64 {
	return float64(c.Stats.UnclusteredBytes)
}

// AccessFrequency surfaces how often a candidate is read (the custom
// "read_rate" statistic, reads/day), implementing §8's workload-awareness
// direction: compacting hot tables buys more query-time savings per GBHr
// than compacting cold ones. Connectors that cannot measure access
// patterns leave the statistic absent and the trait reads 0.
type AccessFrequency struct{}

// Name implements Trait.
func (AccessFrequency) Name() string { return "access_frequency" }

// Direction implements Trait.
func (AccessFrequency) Direction() Direction { return Benefit }

// Value implements Trait.
func (AccessFrequency) Value(c *Candidate) float64 {
	if c.Stats.Custom == nil {
		return 0
	}
	return c.Stats.Custom["read_rate"]
}

// TraitFunc adapts a function into a Trait, the extension point for
// custom deployments (NFR1).
type TraitFunc struct {
	TraitName string
	Dir       Direction
	Fn        func(c *Candidate) float64
}

// Name implements Trait.
func (t TraitFunc) Name() string { return t.TraitName }

// Direction implements Trait.
func (t TraitFunc) Direction() Direction { return t.Dir }

// Value implements Trait.
func (t TraitFunc) Value(c *Candidate) float64 { return t.Fn(c) }

// Orient computes every trait for every candidate — exported for
// external decide planes (internal/decideshard) that orient per shard.
func Orient(cands []*Candidate, traits []Trait) { orient(cands, traits) }

func orient(cands []*Candidate, traits []Trait) {
	for _, c := range cands {
		if c.Traits == nil {
			c.Traits = make(map[string]float64, len(traits))
		}
		for _, t := range traits {
			c.Traits[t.Name()] = t.Value(c)
		}
	}
}
