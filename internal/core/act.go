package core

import (
	"fmt"

	"autocomp/internal/compaction"
	"autocomp/internal/lst"
)

// Scheduler turns the selected candidates into an execution plan: a
// sequence of rounds; candidates within one round may run in parallel,
// rounds run strictly one after another (the act phase, §4.4).
type Scheduler interface {
	Name() string
	Plan(selected []*Candidate) [][]*Candidate
}

// SequentialScheduler runs every work unit one after another — the
// conservative choice when compaction shares a cluster with user
// transactions (§4.4).
type SequentialScheduler struct{}

// Name implements Scheduler.
func (SequentialScheduler) Name() string { return "sequential" }

// Plan implements Scheduler.
func (SequentialScheduler) Plan(selected []*Candidate) [][]*Candidate {
	out := make([][]*Candidate, 0, len(selected))
	for _, c := range selected {
		out = append(out, []*Candidate{c})
	}
	return out
}

// TablesParallelPartitionsSequential runs candidates of distinct tables
// in parallel but keeps work units of the same table strictly sequential:
// the paper found that concurrent compactions on one table conflict even
// for disjoint partitions with Iceberg v1.2.0 (§4.4, §6), and observed
// zero cluster-side conflicts with this discipline (Table 1).
type TablesParallelPartitionsSequential struct {
	// MaxParallel caps work units per round (0 = unlimited).
	MaxParallel int
}

// Name implements Scheduler.
func (TablesParallelPartitionsSequential) Name() string {
	return "tables-parallel-partitions-sequential"
}

// Plan implements Scheduler.
func (s TablesParallelPartitionsSequential) Plan(selected []*Candidate) [][]*Candidate {
	// Queue per table, in selection (rank) order.
	order := []string{}
	queues := map[string][]*Candidate{}
	for _, c := range selected {
		key := c.Table.FullName()
		if _, ok := queues[key]; !ok {
			order = append(order, key)
		}
		queues[key] = append(queues[key], c)
	}
	var rounds [][]*Candidate
	for round := 0; ; round++ {
		var batch []*Candidate
		for _, key := range order {
			q := queues[key]
			if round < len(q) {
				batch = append(batch, q[round])
			}
		}
		if len(batch) == 0 {
			break
		}
		if s.MaxParallel > 0 {
			for len(batch) > s.MaxParallel {
				rounds = append(rounds, batch[:s.MaxParallel])
				batch = batch[s.MaxParallel:]
			}
		}
		rounds = append(rounds, batch)
	}
	return rounds
}

// Runner executes one compaction work unit. The LST-backed runner is
// ExecutorRunner; synthetic connectors (e.g. the fleet simulator) provide
// their own (NFR3).
type Runner interface {
	Run(c *Candidate) compaction.Result
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(c *Candidate) compaction.Result

// Run implements Runner.
func (f RunnerFunc) Run(c *Candidate) compaction.Result { return f(c) }

// ExecutorRunner runs candidates through a compaction.Executor against
// the in-repo LST. Tables must be *lst.Table.
type ExecutorRunner struct {
	Exec *compaction.Executor
}

// Run implements Runner.
func (r ExecutorRunner) Run(c *Candidate) compaction.Result {
	t, ok := c.Table.(*lst.Table)
	if !ok {
		return compaction.Result{
			Table: c.Table.FullName(),
			Err:   fmt.Errorf("core: ExecutorRunner requires *lst.Table, got %T", c.Table),
		}
	}
	switch c.Scope {
	case ScopePartition:
		return r.Exec.CompactPartition(t, c.Partition)
	case ScopeSnapshot:
		return r.Exec.CompactFiles(t, c.Files())
	default:
		return r.Exec.CompactTable(t)
	}
}

// StartCandidate begins a two-phase compaction for c, for event-driven
// harnesses that interleave workload commits with the compaction window
// (how Table 1's cluster-side conflicts arise). The caller finishes the
// returned op at op.CommitAt().
func (r ExecutorRunner) StartCandidate(c *Candidate) (*compaction.Op, error) {
	t, ok := c.Table.(*lst.Table)
	if !ok {
		return nil, fmt.Errorf("core: ExecutorRunner requires *lst.Table, got %T", c.Table)
	}
	switch c.Scope {
	case ScopePartition:
		return r.Exec.Start(t, compaction.PartitionScope, c.Partition), nil
	case ScopeSnapshot:
		return r.Exec.StartFiles(t, c.Files()), nil
	default:
		return r.Exec.Start(t, compaction.TableScope, ""), nil
	}
}
