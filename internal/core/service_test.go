package core

import (
	"testing"
	"time"

	"autocomp/internal/compaction"
	"autocomp/internal/lst"
	"autocomp/internal/storage"
)

// fakeTable satisfies Table for tests that do not need a real LST.
type fakeTable struct {
	name  string
	parts []string
}

func (f fakeTable) Database() string {
	for i := 0; i < len(f.name); i++ {
		if f.name[i] == '.' {
			return f.name[:i]
		}
	}
	return f.name
}
func (f fakeTable) Name() string                           { return f.name }
func (f fakeTable) FullName() string                       { return f.name }
func (f fakeTable) Spec() lst.PartitionSpec                { return lst.PartitionSpec{} }
func (f fakeTable) Mode() lst.WriteMode                    { return lst.CopyOnWrite }
func (f fakeTable) Prop(string) string                     { return "" }
func (f fakeTable) Created() time.Duration                 { return 0 }
func (f fakeTable) LastWrite() time.Duration               { return 0 }
func (f fakeTable) WriteCount() int64                      { return 0 }
func (f fakeTable) FileCount() int                         { return 0 }
func (f fakeTable) TotalBytes() int64                      { return 0 }
func (f fakeTable) Partitions() []string                   { return f.parts }
func (f fakeTable) LiveFiles() []lst.DataFile              { return nil }
func (f fakeTable) FilesInPartition(string) []lst.DataFile { return nil }

// --- schedulers ---

func TestSequentialScheduler(t *testing.T) {
	cands := []*Candidate{mkCand("a.1", nil), mkCand("a.2", nil)}
	plan := SequentialScheduler{}.Plan(cands)
	if len(plan) != 2 || len(plan[0]) != 1 {
		t.Fatalf("plan = %v", plan)
	}
}

func TestTablesParallelPartitionsSequential(t *testing.T) {
	t1 := fakeTable{name: "db.t1"}
	t2 := fakeTable{name: "db.t2"}
	cands := []*Candidate{
		{Table: t1, Scope: ScopePartition, Partition: "p1"},
		{Table: t1, Scope: ScopePartition, Partition: "p2"},
		{Table: t2, Scope: ScopePartition, Partition: "p1"},
		{Table: t1, Scope: ScopePartition, Partition: "p3"},
	}
	plan := TablesParallelPartitionsSequential{}.Plan(cands)
	// Round 0: t1/p1 + t2/p1 (different tables in parallel).
	// Round 1: t1/p2. Round 2: t1/p3.
	if len(plan) != 3 {
		t.Fatalf("rounds = %d", len(plan))
	}
	if len(plan[0]) != 2 {
		t.Fatalf("round0 = %d", len(plan[0]))
	}
	// Never two work units of the same table in one round.
	for _, round := range plan {
		seen := map[string]bool{}
		for _, c := range round {
			if seen[c.Table.FullName()] {
				t.Fatalf("same table twice in round: %v", c.Table.FullName())
			}
			seen[c.Table.FullName()] = true
		}
	}
}

func TestSchedulerMaxParallel(t *testing.T) {
	var cands []*Candidate
	for i := 0; i < 5; i++ {
		cands = append(cands, &Candidate{Table: fakeTable{name: "db.t" + itoa(i)}, Scope: ScopeTable})
	}
	plan := TablesParallelPartitionsSequential{MaxParallel: 2}.Plan(cands)
	total := 0
	for _, round := range plan {
		if len(round) > 2 {
			t.Fatalf("round exceeds max parallel: %d", len(round))
		}
		total += len(round)
	}
	if total != 5 {
		t.Fatalf("plan lost candidates: %d", total)
	}
}

// --- service end to end ---

func buildService(t *testing.T, l *lake, selector Selector) *Service {
	t.Helper()
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: HybridScopeGenerator{},
		Observer:  l.observer(),
		StatsFilters: []Filter{
			MinSmallFiles{Min: 2},
		},
		Traits: []Trait{
			FileCountReduction{},
			ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(200 * storage.GB)},
		},
		Ranker: MOOPRanker{Objectives: []Objective{
			{Trait: FileCountReduction{}, Weight: 0.7},
			{Trait: ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(200 * storage.GB)}, Weight: 0.3},
		}},
		Selector:  selector,
		Scheduler: TablesParallelPartitionsSequential{},
		Runner:    ExecutorRunner{Exec: l.exec},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceValidation(t *testing.T) {
	l := newLake(t)
	if _, err := NewService(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewService(Config{Connector: l.connector()}); err == nil {
		t.Fatal("missing generator accepted")
	}
	// Invalid MOOP weights rejected via Validate.
	_, err := NewService(Config{
		Connector: l.connector(),
		Generator: TableScopeGenerator{},
		Observer:  l.observer(),
		Traits:    []Trait{FileCountReduction{}},
		Ranker:    MOOPRanker{Objectives: []Objective{{Trait: FileCountReduction{}, Weight: 0.4}}},
	})
	if err == nil {
		t.Fatal("invalid weights accepted")
	}
}

func TestServiceRunOnceCompactsWorstTables(t *testing.T) {
	l := newLake(t)
	// Fragmented table: 40 small files across 2 partitions.
	l.addTable(t, "db1", "frag", true, []partLayout{
		{"2024-01", 20, 20 * mb},
		{"2024-02", 20, 20 * mb},
	})
	// Healthy table: files at target.
	l.addTable(t, "db1", "healthy", false, []partLayout{{"", 4, 600 * mb}})
	l.clock.Advance(time.Hour)

	svc := buildService(t, l, TopK{K: 10})
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision.Generated != 3 { // 2 partitions + 1 table scope
		t.Fatalf("generated = %d", rep.Decision.Generated)
	}
	// The healthy table is filtered (0 small files).
	if rep.Decision.AfterStatsFilter != 2 {
		t.Fatalf("after stats filter = %d", rep.Decision.AfterStatsFilter)
	}
	if rep.FilesReduced != 38 { // each partition: 20 → 1
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if rep.Conflicts != 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ActualGBHr <= 0 {
		t.Fatal("no GBHr accounted")
	}
	frag, _ := l.cp.Table("db1", "frag")
	if frag.FileCount() != 2 {
		t.Fatalf("frag file count = %d", frag.FileCount())
	}
}

func TestServiceTopKLimitsWork(t *testing.T) {
	l := newLake(t)
	for i := 0; i < 6; i++ {
		l.addTable(t, "db1", "t"+itoa(i), false, []partLayout{{"", 10, 10 * mb}})
	}
	l.clock.Advance(time.Hour)
	svc := buildService(t, l, TopK{K: 2})
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decision.Selected) != 2 {
		t.Fatalf("selected = %d", len(rep.Decision.Selected))
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
}

func TestServiceBudgetSelectorDynamicK(t *testing.T) {
	l := newLake(t)
	for i := 0; i < 8; i++ {
		l.addTable(t, "db1", "t"+itoa(i), false, []partLayout{{"", 10, 50 * mb}})
	}
	l.clock.Advance(time.Hour)
	// Each candidate costs 64 × 500MB/200GB/hr ≈ 0.156 GBHr; a budget of
	// 0.5 GBHr admits 3.
	svc := buildService(t, l, BudgetSelector{BudgetGBHr: 0.5})
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decision.Selected) != 3 {
		t.Fatalf("dynamic k = %d", len(rep.Decision.Selected))
	}
}

func TestServiceDecideWithoutRunner(t *testing.T) {
	l := newLake(t)
	l.addTable(t, "db1", "a", false, []partLayout{{"", 5, 10 * mb}})
	l.clock.Advance(time.Hour)
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: TableScopeGenerator{},
		Observer:  l.observer(),
		Traits:    []Trait{FileCountReduction{}},
		Ranker:    ThresholdPolicy{Trait: FileCountReduction{}, Threshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := svc.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Selected) != 1 {
		t.Fatalf("selected = %d", len(d.Selected))
	}
	if _, err := svc.Act(d); err == nil {
		t.Fatal("Act without runner should fail")
	}
}

func TestEstimatorLedgerFeedback(t *testing.T) {
	l := newLake(t)
	// Partitioned table with one lone small file per partition: the
	// table-level ΔF estimator counts them all, but none can merge, so
	// the actual reduction is lower (the §7 overestimation).
	l.addTable(t, "db1", "sparse", true, []partLayout{
		{"2024-01", 1, 10 * mb},
		{"2024-02", 1, 10 * mb},
		{"2024-03", 4, 10 * mb},
	})
	l.clock.Advance(time.Hour)

	ledger := &EstimatorLedger{}
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: TableScopeGenerator{},
		Observer:  l.observer(),
		Traits: []Trait{
			FileCountReduction{},
			ComputeCost{ExecutorMemoryGB: 64, RewriteBytesPerHour: float64(200 * storage.GB)},
		},
		Ranker:   MOOPRanker{Objectives: []Objective{{Trait: FileCountReduction{}, Weight: 1}}},
		Runner:   ExecutorRunner{Exec: l.exec},
		OnReport: []func(*Report){ledger.Observe},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunOnce(); err != nil {
		t.Fatal(err)
	}
	recs := ledger.Records()
	if len(recs) != 1 {
		t.Fatalf("ledger records = %d", len(recs))
	}
	r := recs[0]
	if r.EstimatedReduction != 6 {
		t.Fatalf("estimated ΔF = %v", r.EstimatedReduction)
	}
	// Actual: only 2024-03 merges (4 → 1 = 3); lone files unmergeable.
	if r.ActualReduction != 3 {
		t.Fatalf("actual reduction = %v", r.ActualReduction)
	}
	if ledger.ReductionOverestimationPct() <= 0 {
		t.Fatal("overestimation not positive")
	}
}

func TestRunnerFuncAndBadTable(t *testing.T) {
	called := false
	r := RunnerFunc(func(c *Candidate) compaction.Result {
		called = true
		return compaction.Result{Table: c.Table.FullName()}
	})
	r.Run(&Candidate{Table: fakeTable{name: "x.y"}})
	if !called {
		t.Fatal("runner func not called")
	}
	// ExecutorRunner rejects non-LST tables.
	er := ExecutorRunner{}
	res := er.Run(&Candidate{Table: fakeTable{name: "x.y"}})
	if res.Err == nil {
		t.Fatal("non-LST table accepted")
	}
	if _, err := er.StartCandidate(&Candidate{Table: fakeTable{name: "x.y"}}); err == nil {
		t.Fatal("StartCandidate accepted non-LST table")
	}
}

func TestServiceSnapshotScope(t *testing.T) {
	l := newLake(t)
	tbl := l.addTable(t, "db1", "a", false, []partLayout{{"", 10, 10 * mb}})
	l.clock.Advance(3 * time.Hour)
	// Fresh small files within the window.
	tbl.AppendFiles([]lst.FileSpec{
		{SizeBytes: 5 * mb, RowCount: 1},
		{SizeBytes: 5 * mb, RowCount: 1},
		{SizeBytes: 5 * mb, RowCount: 1},
	})
	svc, err := NewService(Config{
		Connector: l.connector(),
		Generator: SnapshotScopeGenerator{Window: time.Hour, Now: l.clock.Now},
		Observer:  l.observer(),
		Traits:    []Trait{FileCountReduction{}},
		Ranker:    ThresholdPolicy{Trait: FileCountReduction{}, Threshold: 2},
		Runner:    ExecutorRunner{Exec: l.exec},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := svc.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	// Only the 3 fresh files merge (3 → 1); the 10 older files remain.
	if rep.FilesReduced != 2 {
		t.Fatalf("files reduced = %d", rep.FilesReduced)
	}
	if tbl.FileCount() != 11 {
		t.Fatalf("file count = %d", tbl.FileCount())
	}
}
