package experiments

import (
	"fmt"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/metrics"
	"autocomp/internal/policy"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Unified maintenance: metadata checkpointing as a budgeted action ---

// MaintSample is one sampled day of the paired-fleet run.
type MaintSample struct {
	Day int
	// DataOnlyMeta and UnifiedMeta are fleet-wide metadata-object
	// counts under the two regimes.
	DataOnlyMeta int64
	UnifiedMeta  int64
	// DataOnlyObjects and UnifiedObjects are total NameNode objects
	// (data files + metadata).
	DataOnlyObjects int64
	UnifiedObjects  int64
}

// MaintResult compares a data-only AutoComp deployment against the
// unified maintenance pipeline, where snapshot expiry, metadata
// checkpointing, and manifest rewriting compete with data compaction for
// the same GBHr budget in one MOOP ranking. The paper's cause (iv) —
// per-commit metadata files — goes unmanaged in the data-only regime, so
// its metadata-object count grows without bound; the unified regime holds
// it at a policy-determined steady state.
type MaintResult struct {
	Samples []MaintSample

	// Action tallies across the unified run (the data-only run executes
	// only data compactions by construction).
	DataCompactions  int
	Checkpoints      int
	Expiries         int
	ManifestRewrites int

	DataOnlyFinalMeta int64
	UnifiedFinalMeta  int64
	// MetaGrowthDataOnly and MetaGrowthUnified are final/midpoint
	// metadata-count ratios — ~1 means steady state.
	MetaGrowthDataOnly float64
	MetaGrowthUnified  float64
	// NameNode utilization: total objects over one NameNode's capacity.
	DataOnlyUtilization float64
	UnifiedUtilization  float64
	// Metadata planning opens accumulated over the run.
	DataOnlyMetaOpens int64
	UnifiedMetaOpens  int64
}

// ID implements Result.
func (MaintResult) ID() string { return "maint" }

// Title implements Result.
func (MaintResult) Title() string {
	return "Unified maintenance: fleet metadata objects, data-only vs unified pipeline"
}

// Render implements Result.
func (r MaintResult) Render() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Day),
			fmt.Sprintf("%d", s.DataOnlyMeta),
			fmt.Sprintf("%d", s.UnifiedMeta),
			fmt.Sprintf("%d", s.DataOnlyObjects),
			fmt.Sprintf("%d", s.UnifiedObjects),
		})
	}
	body := metrics.RenderTable(
		[]string{"Day", "Meta (data-only)", "Meta (unified)", "Objects (data-only)", "Objects (unified)"},
		rows)
	body += fmt.Sprintf("\nunified actions: %d data compactions, %d checkpoints, %d expiries, %d manifest rewrites\n",
		r.DataCompactions, r.Checkpoints, r.Expiries, r.ManifestRewrites)
	body += fmt.Sprintf("metadata growth (final/midpoint): data-only %.2fx, unified %.2fx\n",
		r.MetaGrowthDataOnly, r.MetaGrowthUnified)
	body += fmt.Sprintf("NameNode utilization: data-only %.4f, unified %.4f (one NameNode = %d objects)\n",
		r.DataOnlyUtilization, r.UnifiedUtilization, storage.DefaultConfig().ObjectsPerNameNode)
	body += fmt.Sprintf("metadata planning opens: data-only %d, unified %d\n",
		r.DataOnlyMetaOpens, r.UnifiedMetaOpens)
	return body
}

// RunMaint ages two identical fleets under the same daily compute budget:
// one running the data-only pipeline, one the unified maintenance
// pipeline. Both use the same budget selector — metadata actions are not
// scheduled by a side loop; they must win budget in the shared ranking.
// Both pipelines are expressed as policy specs and compiled; decision
// parity between the spec-compiled and hand-wired constructions is
// asserted byte-for-byte by the policy-plane tests.
func RunMaint(seed int64, quick bool) (Result, error) {
	days, sampleEvery := 360, 60
	if quick {
		days, sampleEvery = 90, 15
	}
	budget := map[string]any{"budget_gbhr": float64(226 * 1024)}
	model := fleet.DefaultModel(512 * storage.MB)

	newFleet := func() *fleet.Fleet {
		return fleet.New(fleetConfig(seed, quick), sim.NewClock())
	}
	dataFleet, unifiedFleet := newFleet(), newFleet()

	dataSpec := policy.DefaultDataSpec(true)
	dataSpec.Selector = &policy.Component{Name: "budget", Params: budget}
	dataSS, err := dataFleet.ServiceFromSpec(dataSpec, model, fleet.SpecRunOptions{})
	if err != nil {
		return nil, err
	}
	dataSvc := dataSS.Svc
	unifiedSpec := policy.DefaultSpec()
	unifiedSpec.Selector = &policy.Component{Name: "budget", Params: budget}
	unifiedSpec.Execution = nil
	unifiedSS, err := unifiedFleet.ServiceFromSpec(unifiedSpec, model, fleet.SpecRunOptions{})
	if err != nil {
		return nil, err
	}
	unifiedSvc := unifiedSS.Svc

	res := MaintResult{}
	var midDataOnly, midUnified int64
	for d := 1; d <= days; d++ {
		dataFleet.AdvanceDay()
		unifiedFleet.AdvanceDay()
		dataFleet.RunDailyScans()
		unifiedFleet.RunDailyScans()
		if _, err := dataSvc.RunOnce(); err != nil {
			return nil, err
		}
		rep, err := unifiedSvc.RunOnce()
		if err != nil {
			return nil, err
		}
		for action, n := range rep.ActionCounts() {
			switch action {
			case core.ActionDataCompaction:
				res.DataCompactions += n
			case core.ActionMetadataCheckpoint:
				res.Checkpoints += n
			case core.ActionSnapshotExpiry:
				res.Expiries += n
			case core.ActionManifestRewrite:
				res.ManifestRewrites += n
			}
		}
		if d%sampleEvery == 0 || d == days {
			res.Samples = append(res.Samples, MaintSample{
				Day:             d,
				DataOnlyMeta:    dataFleet.TotalMetadataObjects(),
				UnifiedMeta:     unifiedFleet.TotalMetadataObjects(),
				DataOnlyObjects: dataFleet.TotalObjects(),
				UnifiedObjects:  unifiedFleet.TotalObjects(),
			})
		}
		if d == days/2 {
			midDataOnly = dataFleet.TotalMetadataObjects()
			midUnified = unifiedFleet.TotalMetadataObjects()
		}
	}

	res.DataOnlyFinalMeta = dataFleet.TotalMetadataObjects()
	res.UnifiedFinalMeta = unifiedFleet.TotalMetadataObjects()
	if midDataOnly > 0 {
		res.MetaGrowthDataOnly = float64(res.DataOnlyFinalMeta) / float64(midDataOnly)
	}
	if midUnified > 0 {
		res.MetaGrowthUnified = float64(res.UnifiedFinalMeta) / float64(midUnified)
	}
	perNN := float64(storage.DefaultConfig().ObjectsPerNameNode)
	res.DataOnlyUtilization = float64(dataFleet.TotalObjects()) / perNN
	res.UnifiedUtilization = float64(unifiedFleet.TotalObjects()) / perNN
	res.DataOnlyMetaOpens = dataFleet.MetadataOpenCalls()
	res.UnifiedMetaOpens = unifiedFleet.MetadataOpenCalls()
	return res, nil
}

func init() {
	register(Spec{ExpID: "maint", Title: MaintResult{}.Title(), Run: RunMaint})
}
