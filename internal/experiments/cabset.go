package experiments

import (
	"fmt"
	"sync"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

// cabSet holds the four strategy runs Figures 6–8 and Table 1 all
// project from: no compaction, MOOP table top-10, MOOP hybrid top-50,
// MOOP hybrid top-500 (§6).
type cabSet struct {
	Runs []*bench.CABResult
}

var (
	cabCacheMu sync.Mutex
	cabCache   = map[string]*cabSet{}
)

// cabConfig returns the CAB workload config: the paper's parameters
// (500 GB, 20 databases, 1 CPU-hour, 5 hours) or a scaled-down quick
// variant with identical shape.
func cabConfig(seed int64, quick bool) workload.CABConfig {
	if quick {
		// Same shape as the paper's run (20 databases keeps the ratio
		// of k to candidate counts intact) at reduced volume/duration.
		return workload.CABConfig{
			RawDataBytes: 60 * storage.GB,
			Databases:    20,
			CPUHours:     1,
			Duration:     3 * time.Hour,
			Months:       36,
			Seed:         seed,
		}
	}
	cfg := workload.DefaultCABConfig()
	cfg.Seed = seed
	return cfg
}

// cabStrategies returns the §6 candidate-selection strategies.
func cabStrategies() []bench.Strategy {
	return []bench.Strategy{
		{Kind: bench.NoCompaction},
		{Kind: bench.MOOPTable, TopK: 10},
		{Kind: bench.MOOPHybrid, TopK: 50},
		{Kind: bench.MOOPHybrid, TopK: 500},
	}
}

// getCABSet memoizes the expensive multi-strategy run per (seed, quick).
func getCABSet(seed int64, quick bool) (*cabSet, error) {
	key := fmt.Sprintf("%d/%v", seed, quick)
	cabCacheMu.Lock()
	defer cabCacheMu.Unlock()
	if s, ok := cabCache[key]; ok {
		return s, nil
	}
	set := &cabSet{}
	for _, strat := range cabStrategies() {
		res, err := bench.RunCAB(bench.CABRunConfig{
			Workload: cabConfig(seed, quick),
			Strategy: strat,
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		set.Runs = append(set.Runs, res)
	}
	cabCache[key] = set
	return set, nil
}

// --- Figure 6: file count over time ---

// Fig6Result is the file-count-over-time comparison across strategies.
type Fig6Result struct{ Set *cabSet }

// ID implements Result.
func (Fig6Result) ID() string { return "fig6" }

// Title implements Result.
func (Fig6Result) Title() string {
	return "Figure 6: compaction strategy impact on file count over time"
}

// Render implements Result.
func (r Fig6Result) Render() string {
	headers := []string{"t (min)"}
	for _, run := range r.Set.Runs {
		headers = append(headers, run.Strategy.Label())
	}
	n := 0
	for _, run := range r.Set.Runs {
		if run.FileCounts.Len() > n {
			n = run.FileCounts.Len()
		}
	}
	var rows [][]string
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(headers))
		var ts time.Duration
		for _, run := range r.Set.Runs {
			if i < run.FileCounts.Len() {
				ts = run.FileCounts.Points[i].T
				break
			}
		}
		row = append(row, fmt.Sprintf("%.0f", ts.Minutes()))
		for _, run := range r.Set.Runs {
			if i < run.FileCounts.Len() {
				row = append(row, fmt.Sprintf("%.0f", run.FileCounts.Points[i].V))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return metrics.RenderTable(headers, rows)
}

// Baseline returns the no-compaction run.
func (r Fig6Result) Baseline() *bench.CABResult { return r.Set.Runs[0] }

// GrowthPerHour returns the baseline's mean file-count growth per hour
// (the paper observes ≈2,640 files/hour).
func (r Fig6Result) GrowthPerHour() float64 {
	fc := r.Baseline().FileCounts
	if fc.Len() < 2 {
		return 0
	}
	first, last := fc.Points[0], fc.Points[fc.Len()-1]
	hours := (last.T - first.T).Hours()
	if hours == 0 {
		return 0
	}
	return (last.V - first.V) / hours
}

func init() {
	register(Spec{
		ExpID: "fig6",
		Title: Fig6Result{}.Title(),
		Run: func(seed int64, quick bool) (Result, error) {
			set, err := getCABSet(seed, quick)
			if err != nil {
				return nil, err
			}
			return Fig6Result{Set: set}, nil
		},
	})
}

// --- Figure 7: compaction cost ---

// Fig7Result compares mean GBHrApp across strategies.
type Fig7Result struct{ Set *cabSet }

// ID implements Result.
func (Fig7Result) ID() string { return "fig7" }

// Title implements Result.
func (Fig7Result) Title() string {
	return "Figure 7: mean GBHrApp for various compaction strategies"
}

// Render implements Result.
func (r Fig7Result) Render() string {
	var rows [][]string
	for _, run := range r.Set.Runs {
		if run.Strategy.Kind == bench.NoCompaction {
			continue
		}
		mean := metrics.Mean(run.CompactionGBHrs)
		sd := metrics.StdDev(run.CompactionGBHrs)
		rows = append(rows, []string{
			run.Strategy.Label(),
			fmt.Sprintf("%d", len(run.CompactionGBHrs)),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", sd),
			fmt.Sprintf("%d", run.FilesReducedTotal),
		})
	}
	return metrics.RenderTable(
		[]string{"Strategy", "Ops", "Mean GBHrApp", "StdDev", "Files reduced"}, rows)
}

// MeanGBHr returns the mean per-op GBHr of run index i (1=table-10,
// 2=hybrid-50, 3=hybrid-500).
func (r Fig7Result) MeanGBHr(i int) float64 {
	return metrics.Mean(r.Set.Runs[i].CompactionGBHrs)
}

// StdGBHr returns the per-op GBHr standard deviation of run index i.
func (r Fig7Result) StdGBHr(i int) float64 {
	return metrics.StdDev(r.Set.Runs[i].CompactionGBHrs)
}

func init() {
	register(Spec{
		ExpID: "fig7",
		Title: Fig7Result{}.Title(),
		Run: func(seed int64, quick bool) (Result, error) {
			set, err := getCABSet(seed, quick)
			if err != nil {
				return nil, err
			}
			return Fig7Result{Set: set}, nil
		},
	})
}

// --- Figure 8: query latency candlesticks ---

// Fig8Result reports per-hour latency candlesticks for read-only and
// read-write queries under no compaction, table top-10, and hybrid
// top-500.
type Fig8Result struct{ Set *cabSet }

// ID implements Result.
func (Fig8Result) ID() string { return "fig8" }

// Title implements Result.
func (Fig8Result) Title() string {
	return "Figure 8: impact of compaction on query latency (per-hour candlesticks)"
}

// panels returns the three strategies Figure 8 plots.
func (r Fig8Result) panels() []*bench.CABResult {
	return []*bench.CABResult{r.Set.Runs[0], r.Set.Runs[1], r.Set.Runs[3]}
}

// Render implements Result.
func (r Fig8Result) Render() string {
	out := ""
	for _, run := range r.panels() {
		for _, kind := range []string{"RO", "RW"} {
			var rows [][]string
			for _, h := range run.Hours {
				samples := h.ROLatencies
				if kind == "RW" {
					samples = h.RWLatencies
				}
				c := metrics.NewCandlestick(samples)
				rows = append(rows, []string{
					fmt.Sprintf("%d", h.Hour),
					fmt.Sprintf("%d", c.N),
					fmt.Sprintf("%.1f", c.Min),
					fmt.Sprintf("%.1f", c.P25),
					fmt.Sprintf("%.1f", c.Median),
					fmt.Sprintf("%.1f", c.P75),
					fmt.Sprintf("%.1f", c.Max),
				})
			}
			out += fmt.Sprintf("%s — %s (exec time seconds; end-to-end %s)\n",
				run.Strategy.Label(), kind, run.EndToEnd.Round(time.Minute)) +
				metrics.RenderTable([]string{"Hour", "N", "Min", "P25", "Median", "P75", "Max"}, rows) + "\n"
		}
	}
	return out
}

// MedianRO returns the median read-only latency of a run's hour h
// (1-based), 0 when absent.
func (r Fig8Result) MedianRO(runIdx, hour int) float64 {
	run := r.Set.Runs[runIdx]
	if hour-1 < 0 || hour-1 >= len(run.Hours) {
		return 0
	}
	return metrics.NewCandlestick(run.Hours[hour-1].ROLatencies).Median
}

func init() {
	register(Spec{
		ExpID: "fig8",
		Title: Fig8Result{}.Title(),
		Run: func(seed int64, quick bool) (Result, error) {
			set, err := getCABSet(seed, quick)
			if err != nil {
				return nil, err
			}
			return Fig8Result{Set: set}, nil
		},
	})
}

// --- Table 1: conflicts ---

// Table1Result reports client- and cluster-side conflicts per hour for
// the no-compaction, table top-10, and hybrid top-500 runs.
type Table1Result struct{ Set *cabSet }

// ID implements Result.
func (Table1Result) ID() string { return "table1" }

// Title implements Result.
func (Table1Result) Title() string {
	return "Table 1: client- and cluster-side conflicts per execution hour"
}

// Render implements Result.
func (r Table1Result) Render() string {
	noComp, table10, hybrid := r.Set.Runs[0], r.Set.Runs[1], r.Set.Runs[3]
	maxHours := len(noComp.Hours)
	if len(table10.Hours) > maxHours {
		maxHours = len(table10.Hours)
	}
	if len(hybrid.Hours) > maxHours {
		maxHours = len(hybrid.Hours)
	}
	get := func(run *bench.CABResult, h int) bench.HourStat {
		if h < len(run.Hours) {
			return run.Hours[h]
		}
		return bench.HourStat{}
	}
	var rows [][]string
	for h := 0; h < maxHours; h++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", h+1),
			fmt.Sprintf("%d", get(noComp, h).WriteQueries),
			fmt.Sprintf("%d", get(noComp, h).ClientConflicts),
			fmt.Sprintf("%d", get(table10, h).ClientConflicts),
			fmt.Sprintf("%d", get(hybrid, h).ClientConflicts),
			fmt.Sprintf("%d", get(table10, h).ClusterConflicts),
			fmt.Sprintf("%d", get(hybrid, h).ClusterConflicts),
		})
	}
	return metrics.RenderTable([]string{
		"Hour", "#WriteQ", "NoComp cli", "Table-10 cli", "Hybrid-500 cli",
		"Table-10 cluster", "Hybrid-500 cluster"}, rows)
}

// ClusterConflictTotals returns total cluster-side conflicts for the
// table-10 and hybrid-500 runs.
func (r Table1Result) ClusterConflictTotals() (table10, hybrid500 int) {
	for _, h := range r.Set.Runs[1].Hours {
		table10 += h.ClusterConflicts
	}
	for _, h := range r.Set.Runs[3].Hours {
		hybrid500 += h.ClusterConflicts
	}
	return table10, hybrid500
}

func init() {
	register(Spec{
		ExpID: "table1",
		Title: Table1Result{}.Title(),
		Run: func(seed int64, quick bool) (Result, error) {
			set, err := getCABSet(seed, quick)
			if err != nil {
				return nil, err
			}
			return Table1Result{Set: set}, nil
		},
	})
}
