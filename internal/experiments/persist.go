package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"autocomp/internal/lst"
	"autocomp/internal/lstlog"
	"autocomp/internal/metrics"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Durable commit log: cold-start recovery cost ---

// PersistResult measures what metadata checkpointing buys a restart: a
// table with a long commit history is recovered twice from the same
// on-disk _delta_log — once replaying the full action tail from LSN 0,
// once resuming from the newest compacted artifact — and both
// reconstructions must land on the identical state the writer left.
type PersistResult struct {
	// Versions is the committed table version count; Checkpoints is how
	// many compacted artifacts the run left behind.
	Versions    int64
	Checkpoints int

	// LogFiles/LogBytes describe the on-disk _delta_log.
	LogFiles int
	LogBytes int64

	// FullReplayMS recovers by replaying every action from LSN 0;
	// CheckpointMS resumes from the newest compacted artifact. Both are
	// the best of several cold opens.
	FullReplayMS float64
	CheckpointMS float64
	// Speedup is FullReplayMS / CheckpointMS.
	Speedup float64

	// StatesMatch reports whether both recovery paths reconstructed the
	// writer's exact final state.
	StatesMatch bool
}

// ID implements Result.
func (PersistResult) ID() string { return "persist" }

// Title implements Result.
func (PersistResult) Title() string {
	return "Durable commit log: cold-start recovery, full replay vs checkpoint resume"
}

// Render implements Result.
func (r PersistResult) Render() string {
	body := metrics.RenderTable(
		[]string{"Recovery path", "Time (ms)", "Speedup"},
		[][]string{
			{"full tail replay (LSN 0)", fmt.Sprintf("%.2f", r.FullReplayMS), "1.0x"},
			{"checkpoint resume", fmt.Sprintf("%.2f", r.CheckpointMS), fmt.Sprintf("%.1fx", r.Speedup)},
		})
	body += fmt.Sprintf("\nlog: %d versions, %d checkpoints, %d files, %.1f KiB on disk\n",
		r.Versions, r.Checkpoints, r.LogFiles, float64(r.LogBytes)/(1<<10))
	body += fmt.Sprintf("recovered states identical: %v\n", r.StatesMatch)
	return body
}

// Details implements the benchrunner's optional detail hook, landing
// the recovery numbers in the machine-readable bench trajectory.
func (r PersistResult) Details() any {
	return struct {
		Versions     int64   `json:"versions"`
		Checkpoints  int     `json:"checkpoints"`
		LogFiles     int     `json:"log_files"`
		LogBytes     int64   `json:"log_bytes"`
		FullReplayMS float64 `json:"full_replay_ms"`
		CheckpointMS float64 `json:"checkpoint_resume_ms"`
		Speedup      float64 `json:"speedup"`
	}{r.Versions, r.Checkpoints, r.LogFiles, r.LogBytes, r.FullReplayMS, r.CheckpointMS, r.Speedup}
}

// RunPersist builds a logged table with a long commit history plus
// periodic metadata checkpoints, then times the two recovery paths
// against the same directory.
func RunPersist(seed int64, quick bool) (Result, error) {
	commits, checkpointEvery := 1000, 100
	if quick {
		commits, checkpointEvery = 250, 50
	}

	dir, err := os.MkdirTemp("", "autocomp-persist-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := lstlog.Open(lstlog.Config{Root: dir})
	if err != nil {
		return nil, err
	}

	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(seed))
	tbl, err := lst.NewTable(lst.TableConfig{
		Database: "db", Name: "events",
		Spec: lst.PartitionSpec{Column: "day", Transform: lst.TransformDay},
	}, fs, clock)
	if err != nil {
		return nil, err
	}
	tlog, err := store.CreateTableLog("db", "events")
	if err != nil {
		return nil, err
	}
	if err := tlog.Append(tbl.CreateAction()); err != nil {
		return nil, err
	}
	tbl.SetActionSink(tlog.Sink())

	res := PersistResult{}
	parts := []string{"2024-01-01", "2024-01-02", "2024-01-03"}
	for i := 0; i < commits; i++ {
		clock.Advance(time.Minute)
		if _, err := tbl.AppendFiles([]lst.FileSpec{
			{Partition: parts[i%3], SizeBytes: int64(4+i%5) * storage.MB, RowCount: int64(1000 + i)},
			{Partition: parts[i%3], SizeBytes: 2 * storage.MB, RowCount: 500},
		}); err != nil {
			return nil, err
		}
		if (i+1)%25 == 0 {
			// A compaction-shaped overwrite: collapses the partition's
			// accumulated small files, keeping the live file set bounded.
			if _, err := tbl.OverwritePartition(parts[i%3], []lst.FileSpec{
				{Partition: parts[i%3], SizeBytes: 256 * storage.MB, RowCount: 100_000},
			}); err != nil {
				return nil, err
			}
		}
		if (i+1)%checkpointEvery == 0 {
			// Routine maintenance, as the pipeline would schedule it:
			// expiry keeps the snapshot history (and so the checkpoint
			// artifact) bounded, then the checkpoint emits the artifact.
			if _, err := tbl.ExpireSnapshots(20); err != nil {
				return nil, err
			}
			if _, err := tbl.Checkpoint(); err != nil {
				return nil, err
			}
			res.Checkpoints++
		}
	}
	res.Versions = tbl.Version()
	want := tbl.State()

	logDir := filepath.Join(store.TableDir("db", "events"), "_delta_log")
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			res.LogFiles++
			res.LogBytes += info.Size()
		}
	}

	// Each recovery path gets several cold opens against fresh substrates;
	// keep the best, as a microbenchmark would.
	const rounds = 5
	var lastTail, lastCkpt *lst.Table
	tailMS, ckptMS := -1.0, -1.0
	for r := 0; r < rounds; r++ {
		fsT := storage.NewNameNode(storage.DefaultConfig(), sim.NewClock(), sim.NewRNG(seed))
		start := time.Now()
		t1, _, err := lstlog.OpenTableTail(store.TableDir("db", "events"), fsT, sim.NewClock())
		if err != nil {
			return nil, err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; tailMS < 0 || ms < tailMS {
			tailMS = ms
		}
		lastTail = t1

		fsC := storage.NewNameNode(storage.DefaultConfig(), sim.NewClock(), sim.NewRNG(seed))
		start = time.Now()
		t2, _, err := lstlog.OpenTable(store.TableDir("db", "events"), fsC, sim.NewClock())
		if err != nil {
			return nil, err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; ckptMS < 0 || ms < ckptMS {
			ckptMS = ms
		}
		lastCkpt = t2
	}
	res.FullReplayMS, res.CheckpointMS = tailMS, ckptMS
	if ckptMS > 0 {
		res.Speedup = tailMS / ckptMS
	}
	res.StatesMatch = reflect.DeepEqual(want, lastTail.State()) &&
		reflect.DeepEqual(want, lastCkpt.State())
	if !res.StatesMatch {
		return nil, fmt.Errorf("persist: recovery paths reconstructed divergent states")
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "persist", Title: PersistResult{}.Title(), Run: RunPersist})
}
