package experiments

import "testing"

func TestShardShape(t *testing.T) {
	res := runQuick(t, "shard").(ShardResult)
	if res.Tables != 100_000 {
		t.Fatalf("tables = %d, want 100000 (the sweep stays at paper scale)", res.Tables)
	}
	if res.SerialMS <= 0 {
		t.Fatalf("serial baseline = %v ms", res.SerialMS)
	}
	wantShards := []int{1, 2, 4, 16}
	if len(res.Samples) != len(wantShards) {
		t.Fatalf("samples = %d, want %d", len(res.Samples), len(wantShards))
	}
	for i, s := range res.Samples {
		if s.Shards != wantShards[i] {
			t.Fatalf("sample %d: shards = %d, want %d", i, s.Shards, wantShards[i])
		}
		// Parity is the acceptance criterion, not a best effort: any
		// shard count deciding differently from serial is a failure.
		if !s.ParityOK {
			t.Fatalf("shards=%d: decision fingerprint diverged from serial", s.Shards)
		}
		if s.DecideMS <= 0 || s.CriticalPathMS <= 0 {
			t.Fatalf("shards=%d: non-positive timings: %+v", s.Shards, s)
		}
		// The critical path can never exceed the measured wall time:
		// it is the slowest shard chain plus the merge, a subset of
		// the work the wall clock covers.
		if s.Shards > 1 && s.CriticalPathMS > s.DecideMS {
			t.Fatalf("shards=%d: critical path %.2f ms > wall %.2f ms",
				s.Shards, s.CriticalPathMS, s.DecideMS)
		}
	}
	if res.Details() == nil {
		t.Fatal("no details for the bench trajectory")
	}
}
