package experiments

import (
	"fmt"

	"autocomp/internal/bench"
	"autocomp/internal/core"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// EstimatorResult reproduces §7's model-accuracy analysis: the §4.2
// estimators are good enough for ranking but imprecise in absolute terms
// — compute cost is underestimated (the paper saw a 108 TBHr estimate
// consume 129 TBHr, ~19%) and table-level file-count reduction is
// overestimated (~28%) because compaction does not cross partition
// boundaries.
type EstimatorResult struct {
	Tables                 int
	CostUnderestimationPct float64
	ReductionOverestimate  float64
	Records                []core.EstimateRecord
}

// ID implements Result.
func (EstimatorResult) ID() string { return "est" }

// Title implements Result.
func (EstimatorResult) Title() string {
	return "§7 Model Accuracy: estimated vs actual compute cost and file-count reduction"
}

// Render implements Result.
func (r EstimatorResult) Render() string {
	rows := [][]string{
		{"compactions analyzed", fmt.Sprintf("%d", r.Tables), ""},
		{"compute cost underestimation", fmt.Sprintf("%.0f%%", r.CostUnderestimationPct), "paper: ~19%"},
		{"file-count reduction overestimation", fmt.Sprintf("%.0f%%", r.ReductionOverestimate), "paper: ~28%"},
	}
	head := metrics.RenderTable([]string{"Metric", "Measured", "Reference"}, rows)
	var detail [][]string
	for i, rec := range r.Records {
		if i >= 10 {
			break
		}
		detail = append(detail, []string{
			rec.ID,
			fmt.Sprintf("%.0f", rec.EstimatedReduction),
			fmt.Sprintf("%.0f", rec.ActualReduction),
			fmt.Sprintf("%.2f", rec.EstimatedGBHr),
			fmt.Sprintf("%.2f", rec.ActualGBHr),
		})
	}
	return head + "\n" + metrics.RenderTable(
		[]string{"Table", "Est ΔF", "Actual ΔF", "Est GBHr", "Actual GBHr"}, detail)
}

// RunEstimator builds fragmented partitioned tables, lets AutoComp
// predict, compacts, and compares via the feedback ledger.
func RunEstimator(seed int64, quick bool) (Result, error) {
	n := 24
	if quick {
		n = 8
	}
	env := bench.NewEnv(bench.EnvConfig{Seed: seed})
	rng := sim.NewRNG(seed)
	if _, err := env.CP.CreateDatabase("prod", "tenant", 0); err != nil {
		return nil, err
	}

	// Tables whose partitions are unevenly fragmented: some partitions
	// hold many small files, others a single one (unmergeable) — the
	// §7 source of ΔF overestimation at table scope.
	for i := 0; i < n; i++ {
		tbl, err := env.CP.CreateTable("prod", lst.TableConfig{
			Name: fmt.Sprintf("t%03d", i),
			Spec: lst.PartitionSpec{Column: "ds", Transform: lst.TransformMonth},
		})
		if err != nil {
			return nil, err
		}
		parts := rng.IntBetween(8, 16)
		var specs []lst.FileSpec
		for p := 0; p < parts; p++ {
			label := fmt.Sprintf("2024-%02d", 1+p%12)
			// Uneven fragmentation: some partitions hold a single
			// (unmergeable) small file, others dozens.
			count := 1
			if rng.Bernoulli(0.7) {
				count = rng.IntBetween(10, 50)
			}
			for c := 0; c < count; c++ {
				size := int64(rng.LogNormalAround(80*float64(storage.MB), 0.6))
				if size < storage.MB {
					size = storage.MB
				}
				specs = append(specs, lst.FileSpec{
					Partition: label, SizeBytes: size, RowCount: size / 100,
				})
			}
		}
		if _, err := tbl.AppendFiles(specs); err != nil {
			return nil, err
		}
	}

	ledger := &core.EstimatorLedger{}
	cost := core.ComputeCost{
		ExecutorMemoryGB:    env.ExecutorMemoryGB(),
		RewriteBytesPerHour: env.RewriteBytesPerHour(),
	}
	svc, err := core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: env.CP},
		Generator: core.TableScopeGenerator{},
		Observer: core.StatsObserver{
			TargetFileSize: env.TargetFileSize,
			Now:            env.Clock.Now,
		},
		Traits: []core.Trait{core.FileCountReduction{}, cost},
		Ranker: core.MOOPRanker{Objectives: []core.Objective{
			{Trait: core.FileCountReduction{}, Weight: 0.7},
			{Trait: cost, Weight: 0.3},
		}},
		Runner:   core.ExecutorRunner{Exec: env.Exec},
		OnReport: []func(*core.Report){ledger.Observe},
	})
	if err != nil {
		return nil, err
	}
	if _, err := svc.RunOnce(); err != nil {
		return nil, err
	}
	return EstimatorResult{
		Tables:                 len(ledger.Records()),
		CostUnderestimationPct: ledger.CostUnderestimationPct(),
		ReductionOverestimate:  ledger.ReductionOverestimationPct(),
		Records:                ledger.Records(),
	}, nil
}

func init() {
	register(Spec{
		ExpID: "est",
		Title: EstimatorResult{}.Title(),
		Run:   RunEstimator,
	})
}
