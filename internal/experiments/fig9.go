package experiments

import (
	"fmt"

	"autocomp/internal/bench"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/tuner"
	"autocomp/internal/workload"
)

// Fig9Panel describes one panel of Figure 9.
type Fig9Panel struct {
	Name     string
	Workload func(raw int64) workload.PhasedWorkload
	Trait    bench.HookTrait
	Param    tuner.Param
}

// Fig9PanelResult is one tuned panel: per-iteration end-to-end durations
// plus the no-auto-compaction default.
type Fig9PanelResult struct {
	Name          string
	BaselineSecs  float64 // default setting: no auto-compaction
	Scores        []float64
	BestSecs      float64
	BestThreshold float64
}

// Speedup returns baseline/best (>1 means compaction helped).
func (p Fig9PanelResult) Speedup() float64 {
	if p.BestSecs <= 0 {
		return 0
	}
	return p.BaselineSecs / p.BestSecs
}

// Fig9Result reproduces Figure 9: MLOS/FLAML-style tuning of
// optimize-after-write thresholds for TPC-DS WP1 (file-count and entropy
// triggers), TPC-H, and TPC-DS WP3.
type Fig9Result struct {
	Panels []Fig9PanelResult
}

// ID implements Result.
func (Fig9Result) ID() string { return "fig9" }

// Title implements Result.
func (Fig9Result) Title() string {
	return "Figure 9: auto-tuning compaction triggers (end-to-end duration vs iteration)"
}

// Render implements Result.
func (r Fig9Result) Render() string {
	out := ""
	for _, p := range r.Panels {
		var rows [][]string
		for i, s := range p.Scores {
			rows = append(rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.0f", s)})
		}
		out += fmt.Sprintf("%s — baseline (no auto-compaction): %.0fs; best tuned: %.0fs @ threshold %.1f (speedup %.2fx)\n",
			p.Name, p.BaselineSecs, p.BestSecs, p.BestThreshold, p.Speedup()) +
			metrics.RenderTable([]string{"Iteration", "E2E duration (s)"}, rows) + "\n"
	}
	return out
}

// Panel lookup by name.
func (r Fig9Result) Panel(name string) Fig9PanelResult {
	for _, p := range r.Panels {
		if p.Name == name {
			return p
		}
	}
	return Fig9PanelResult{}
}

// RunFig9 tunes each panel with the CFO optimizer.
func RunFig9(seed int64, quick bool) (Result, error) {
	raw := int64(100 * storage.GB)
	iters := 12
	if quick {
		raw = 15 * storage.GB
		iters = 6
	}
	panels := []Fig9Panel{
		{
			Name:     "TPC-DS WP1, File Count",
			Workload: workload.TPCDSWP1,
			Trait:    bench.HookSmallFileCount,
			Param:    tuner.Param{Name: "threshold", Min: 50, Max: 100000, Log: true},
		},
		{
			Name:     "TPC-H, File Count",
			Workload: workload.TPCH,
			Trait:    bench.HookSmallFileCount,
			Param:    tuner.Param{Name: "threshold", Min: 50, Max: 100000, Log: true},
		},
		{
			Name:     "TPC-DS WP1, Entropy",
			Workload: workload.TPCDSWP1,
			Trait:    bench.HookEntropy,
			Param:    tuner.Param{Name: "threshold", Min: 1, Max: 1000, Log: true},
		},
		{
			Name:     "TPC-DS WP3, File Count",
			Workload: workload.TPCDSWP3,
			Trait:    bench.HookSmallFileCount,
			Param:    tuner.Param{Name: "threshold", Min: 50, Max: 100000, Log: true},
		},
	}

	res := Fig9Result{}
	for _, panel := range panels {
		// Default setting: auto-compaction off.
		base, err := bench.RunPhased(bench.PhasedRunConfig{
			Workload: panel.Workload(raw),
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}

		panelErr := error(nil)
		objective := func(params map[string]float64) float64 {
			r, err := bench.RunPhased(bench.PhasedRunConfig{
				Workload: panel.Workload(raw),
				Seed:     seed,
				Hook: bench.HookSpec{
					Enabled:   true,
					Trait:     panel.Trait,
					Threshold: params["threshold"],
				},
			})
			if err != nil {
				panelErr = err
				return 1e18
			}
			return r.Total.Seconds()
		}
		trials := tuner.CFO{Params: []tuner.Param{panel.Param}, Seed: seed}.Optimize(objective, iters)
		if panelErr != nil {
			return nil, panelErr
		}
		best := tuner.Best(trials)
		res.Panels = append(res.Panels, Fig9PanelResult{
			Name:          panel.Name,
			BaselineSecs:  base.Total.Seconds(),
			Scores:        tuner.Scores(trials),
			BestSecs:      best.Score,
			BestThreshold: best.Params["threshold"],
		})
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "fig9", Title: Fig9Result{}.Title(), Run: RunFig9})
}
