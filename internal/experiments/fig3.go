package experiments

import (
	"fmt"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/engine"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

// Fig3Result reproduces Figure 3: TPC-DS single-user runtime before a
// data-maintenance phase, after it (the paper measures 1.53× slower), and
// after manually triggered compaction (restored).
type Fig3Result struct {
	Before        time.Duration
	After         time.Duration
	AfterCompact  time.Duration
	DegradedRatio float64
	RestoredRatio float64
}

// ID implements Result.
func (Fig3Result) ID() string { return "fig3" }

// Title implements Result.
func (Fig3Result) Title() string {
	return "Figure 3: TPC-DS execution time before/after maintenance and after compaction"
}

// Render implements Result.
func (r Fig3Result) Render() string {
	rows := [][]string{
		{"single-user (initial)", r.Before.Round(time.Second).String(), "1.00x"},
		{"single-user (after maintenance)", r.After.Round(time.Second).String(),
			fmt.Sprintf("%.2fx", r.DegradedRatio)},
		{"single-user (after compaction)", r.AfterCompact.Round(time.Second).String(),
			fmt.Sprintf("%.2fx", r.RestoredRatio)},
	}
	return metrics.RenderTable([]string{"Phase", "Runtime", "vs initial"}, rows)
}

// RunFig3 runs a TPC-DS-like single-user suite around a maintenance phase
// that modifies ~3% of the data, then repeats the suite after compaction.
func RunFig3(seed int64, quick bool) (Result, error) {
	raw := int64(100 * storage.GB)
	if quick {
		raw = 25 * storage.GB
	}

	// Build a 3-round workload: reads, maintenance (3%), reads,
	// compaction, reads. TPCDSWP1 provides the table shapes; we
	// assemble the phases explicitly.
	base := workload.TPCDSWP1(raw)
	// The paper's Figure 3 starts from a clean TPC-DS load (the first
	// single-user round matches the restored one), so the loader here
	// is tuned to near-target file sizes, unlike WP1's untuned loader.
	loadPar := int(raw / (384 << 20))
	if loadPar < 16 {
		loadPar = 16
	}
	w := workload.PhasedWorkload{
		Name:            "fig3",
		Tables:          base.Tables,
		RawBytes:        raw,
		LoadParallelism: loadPar,
		Months:          base.Months,
	}
	read := base.Phases[0] // single-user read suite
	read.Repeat = 2
	maint := workload.Phase{
		Name:   "maintenance",
		Repeat: 1,
		Queries: []workload.QueryTemplate{
			{Name: "dm_delete", Kind: engine.Delete, Table: "store_sales", ModifyFraction: 0.03, RecentPartitions: 4},
			{Name: "dm_insert", Kind: engine.Insert, Table: "store_sales", WriteBytes: raw * 3 / 100, RecentPartitions: 2},
			{Name: "dm_update", Kind: engine.Update, Table: "web_sales", ModifyFraction: 0.03, RecentPartitions: 3},
		},
	}
	r1 := read
	r1.Name = "reads-initial"
	r2 := read
	r2.Name = "reads-after-maintenance"
	r3 := read
	r3.Name = "reads-after-compaction"
	w.Phases = []workload.Phase{r1, maint, r2, r3}

	res, err := bench.RunPhased(bench.PhasedRunConfig{
		Workload: w,
		Seed:     seed,
		// Compact the lake after the degraded read round, before the
		// final one (the paper's manual intervention).
		CompactAfterPhases: map[string]bool{"reads-after-maintenance": true},
	})
	if err != nil {
		return nil, err
	}
	out := Fig3Result{
		Before:       res.PhaseDurationsByName["reads-initial"],
		After:        res.PhaseDurationsByName["reads-after-maintenance"],
		AfterCompact: res.PhaseDurationsByName["reads-after-compaction"],
	}
	if out.Before > 0 {
		out.DegradedRatio = float64(out.After) / float64(out.Before)
		out.RestoredRatio = float64(out.AfterCompact) / float64(out.Before)
	}
	return out, nil
}

func init() {
	register(Spec{
		ExpID: "fig3",
		Title: Fig3Result{}.Title(),
		Run:   RunFig3,
	})
}
