package experiments

import (
	"strings"
	"testing"
)

const testSeed = 1

func runQuick(t *testing.T, id string) Result {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment drivers take seconds; skipped in -short")
	}
	res, err := Run(id, testSeed, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID() != id {
		t.Fatalf("id = %q, want %q", res.ID(), id)
	}
	if res.Title() == "" || res.Render() == "" {
		t.Fatalf("%s: empty title or render", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"est", "fig1", "fig10a", "fig10b", "fig10c", "fig11a", "fig11b",
		"fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "incr", "maint",
		"persist", "sched", "shard", "table1", "tune",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered = %d, want %d", len(all), len(want))
	}
	for i, s := range all {
		if s.ExpID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, s.ExpID, want[i])
		}
		if s.Title == "" || s.Run == nil {
			t.Fatalf("spec %s incomplete", s.ExpID)
		}
	}
	if _, err := Run("nope", 1, true); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	res := runQuick(t, "fig1").(Fig1Result)
	// Raw ingestion files cluster near the 512 MB target...
	if frac := res.RawFraction512(); frac < 0.5 {
		t.Fatalf("raw >=256MB fraction = %.2f, want most of the mass", frac)
	}
	// ...while user-derived data is dominated by small files.
	if frac := res.DerivedSmallFraction(); frac < 0.6 {
		t.Fatalf("derived <128MB fraction = %.2f, want >0.6", frac)
	}
}

func TestFig3Shape(t *testing.T) {
	res := runQuick(t, "fig3").(Fig3Result)
	// Maintenance degrades the suite noticeably (paper: 1.53×)...
	if res.DegradedRatio < 1.15 {
		t.Fatalf("degraded ratio = %.2f, want >= 1.15", res.DegradedRatio)
	}
	if res.DegradedRatio > 3.0 {
		t.Fatalf("degraded ratio = %.2f, implausibly high", res.DegradedRatio)
	}
	// ...and compaction restores performance to near the initial run.
	if res.RestoredRatio > res.DegradedRatio*0.9 {
		t.Fatalf("restored %.2f vs degraded %.2f: compaction did not help",
			res.RestoredRatio, res.DegradedRatio)
	}
	if res.RestoredRatio > 1.35 {
		t.Fatalf("restored ratio = %.2f, want near 1.0", res.RestoredRatio)
	}
}

func TestEstimatorShape(t *testing.T) {
	res := runQuick(t, "est").(EstimatorResult)
	if res.Tables == 0 {
		t.Fatal("nothing analyzed")
	}
	// Cost is underestimated (paper: ~19%).
	if res.CostUnderestimationPct <= 0 {
		t.Fatalf("cost underestimation = %.1f%%, want positive", res.CostUnderestimationPct)
	}
	if res.CostUnderestimationPct > 150 {
		t.Fatalf("cost underestimation = %.1f%%, implausible", res.CostUnderestimationPct)
	}
	// Reduction is overestimated (paper: ~28%).
	if res.ReductionOverestimate <= 0 {
		t.Fatalf("reduction overestimation = %.1f%%, want positive", res.ReductionOverestimate)
	}
}

func TestCABSetShapes(t *testing.T) {
	fig6 := runQuick(t, "fig6").(Fig6Result)
	// Baseline grows steadily (paper: ≈2,640 files/hour at full scale).
	if g := fig6.GrowthPerHour(); g <= 0 {
		t.Fatalf("baseline growth = %.0f files/hour", g)
	}
	runs := fig6.Set.Runs
	base, table10, hybrid50, hybrid500 := runs[0], runs[1], runs[2], runs[3]

	// Every compaction strategy ends below the baseline.
	for _, run := range runs[1:] {
		if run.FileCounts.Last() >= base.FileCounts.Last() {
			t.Fatalf("%s did not beat baseline: %v vs %v",
				run.Strategy.Label(), run.FileCounts.Last(), base.FileCounts.Last())
		}
	}
	// Table top-10 cuts deepest; hybrid-50 is the most gradual
	// (fewer partitions compacted per run).
	if table10.FilesReducedTotal <= hybrid50.FilesReducedTotal {
		t.Fatalf("table-10 %d <= hybrid-50 %d files reduced",
			table10.FilesReducedTotal, hybrid50.FilesReducedTotal)
	}
	if hybrid500.FilesReducedTotal <= hybrid50.FilesReducedTotal {
		t.Fatalf("hybrid-500 %d <= hybrid-50 %d files reduced",
			hybrid500.FilesReducedTotal, hybrid50.FilesReducedTotal)
	}

	fig7 := runQuick(t, "fig7").(Fig7Result)
	// Hybrid's per-op GBHr is smaller and steadier than table scope
	// (§6.1: "more stable value for GBHrApp").
	if fig7.MeanGBHr(2) >= fig7.MeanGBHr(1) {
		t.Fatalf("hybrid mean GBHr %.3f >= table %.3f", fig7.MeanGBHr(2), fig7.MeanGBHr(1))
	}
	if fig7.StdGBHr(2) >= fig7.StdGBHr(1) {
		t.Fatalf("hybrid GBHr spread %.3f >= table %.3f", fig7.StdGBHr(2), fig7.StdGBHr(1))
	}

	fig8 := runQuick(t, "fig8").(Fig8Result)
	// By the final hour, compaction improves read-only latency over the
	// baseline (§6.2).
	lastHour := len(base.Hours)
	if lastHour > 3 {
		baseMed := fig8.MedianRO(0, lastHour-1)
		compMed := fig8.MedianRO(1, lastHour-1)
		if compMed >= baseMed {
			t.Fatalf("hour %d RO median: compaction %.1fs >= baseline %.1fs",
				lastHour-1, compMed, baseMed)
		}
	}

	table1 := runQuick(t, "table1").(Table1Result)
	t10, h500 := table1.ClusterConflictTotals()
	// Table-scope compactions race the workload and conflict; the
	// hybrid partition-sequential discipline eliminates cluster-side
	// conflicts (Table 1).
	if h500 > t10 {
		t.Fatalf("hybrid cluster conflicts %d > table %d", h500, t10)
	}
	if h500 != 0 {
		t.Fatalf("hybrid-500 cluster conflicts = %d, want 0", h500)
	}
}

func TestFig2Shape(t *testing.T) {
	res := runQuick(t, "fig2").(Fig2Result)
	// Before: ~83% tiny. Manual helps; auto helps more.
	if res.TinyFracBefore < 0.7 {
		t.Fatalf("tiny before = %.2f", res.TinyFracBefore)
	}
	if res.TinyFracManual >= res.TinyFracBefore {
		t.Fatal("manual compaction did not shift the distribution")
	}
	if res.TinyFracAuto >= res.TinyFracManual {
		t.Fatal("auto compaction did not improve on manual")
	}
	if res.TinyReductionPct <= 10 {
		t.Fatalf("tiny-file reduction = %.0f%%, want substantial (paper: up to 44%%)", res.TinyReductionPct)
	}
}

func TestFig10aShape(t *testing.T) {
	res := runQuick(t, "fig10a").(Fig10aResult)
	if len(res.Weeks) != 6 {
		t.Fatalf("weeks = %d", len(res.Weeks))
	}
	// Auto top-10 beats manual top-100 on files reduced (paper: +12%).
	if res.AutoMeanFiles <= res.ManualMeanFiles {
		t.Fatalf("auto %.0f <= manual %.0f files/week", res.AutoMeanFiles, res.ManualMeanFiles)
	}
}

func TestFig10bShape(t *testing.T) {
	res := runQuick(t, "fig10b").(Fig10bResult)
	if !res.DynamicKExceedsStatic() {
		t.Fatalf("dynamic k did not exceed static: %+v", res.Weeks)
	}
	// The transition week flushes the backlog static k=100 left behind.
	static, firstDynamic := res.Weeks[0], res.Weeks[1]
	if firstDynamic.FilesReduced <= static.FilesReduced {
		t.Fatalf("dynamic transition did not flush backlog: %d vs %d",
			firstDynamic.FilesReduced, static.FilesReduced)
	}
}

func TestFig10cShape(t *testing.T) {
	res := runQuick(t, "fig10c").(Fig10cResult)
	if len(res.Months) != 12 {
		t.Fatalf("months = %d", len(res.Months))
	}
	// Deployment grows monotonically.
	for i := 1; i < len(res.Months); i++ {
		if res.Months[i].Tables < res.Months[i-1].Tables {
			t.Fatal("deployment shrank")
		}
	}
	// File count peaks before the compaction regimes and ends lower
	// than the peak despite growth.
	peak, end := int64(0), res.Months[len(res.Months)-1].Files
	for _, m := range res.Months[:4] {
		if m.Files > peak {
			peak = m.Files
		}
	}
	if end >= peak {
		t.Fatalf("file count did not drop: peak %d, end %d", peak, end)
	}
}

func TestFig11aShape(t *testing.T) {
	res := runQuick(t, "fig11a").(Fig11aResult)
	if len(res.Days) != 30 {
		t.Fatalf("days = %d", len(res.Days))
	}
	// Query time correlates with files scanned (same sign of deltas on
	// most days).
	agree, total := 0, 0
	for i := 1; i < len(res.Days); i++ {
		ds := res.Days[i].FilesScanned - res.Days[i-1].FilesScanned
		dt := res.Days[i].QueryTime - res.Days[i-1].QueryTime
		if ds == 0 {
			continue
		}
		total++
		if (ds > 0) == (dt > 0) {
			agree++
		}
	}
	if total == 0 || float64(agree)/float64(total) < 0.7 {
		t.Fatalf("query time tracks files scanned on %d/%d days", agree, total)
	}
}

func TestFig11bShape(t *testing.T) {
	res := runQuick(t, "fig11b").(Fig11bResult)
	if len(res.Months) != 14 {
		t.Fatalf("months = %d", len(res.Months))
	}
	// Mean monthly opens in the auto regime sit below the unmanaged
	// regime's, despite the larger deployment (§7, Fig 11b).
	var noneSum, autoSum float64
	var noneN, autoN int
	for _, m := range res.Months {
		switch m.Regime {
		case "none":
			noneSum += float64(m.OpenCalls)
			noneN++
		case "auto":
			autoSum += float64(m.OpenCalls)
			autoN++
		}
	}
	if noneN == 0 || autoN == 0 {
		t.Fatal("regimes missing")
	}
	if autoSum/float64(autoN) >= noneSum/float64(noneN) {
		t.Fatalf("auto opens %.0f >= unmanaged %.0f", autoSum/float64(autoN), noneSum/float64(noneN))
	}
}

func TestFig9Shape(t *testing.T) {
	res := runQuick(t, "fig9").(Fig9Result)
	if len(res.Panels) != 4 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	wp1 := res.Panel("TPC-DS WP1, File Count")
	wp1e := res.Panel("TPC-DS WP1, Entropy")
	tpch := res.Panel("TPC-H, File Count")
	wp3 := res.Panel("TPC-DS WP3, File Count")

	// (i) WP1 benefits from tuned compaction (paper: up to 2×).
	if wp1.Speedup() < 1.05 {
		t.Fatalf("WP1 speedup = %.2f, want > 1.05", wp1.Speedup())
	}
	// (i) TPC-H: the default (no auto-compaction) is best or essentially
	// tied — compaction rewrites whole non-partitioned tables.
	if tpch.BestSecs < tpch.BaselineSecs*0.97 {
		t.Fatalf("TPC-H tuned %.0fs clearly beat baseline %.0fs", tpch.BestSecs, tpch.BaselineSecs)
	}
	// (i) WP3 sees consistent benefits (decoupled clusters hide cost).
	if wp3.Speedup() < 1.02 {
		t.Fatalf("WP3 speedup = %.2f", wp3.Speedup())
	}
	// (ii) file-count and entropy triggers land comparable results.
	ratio := wp1.BestSecs / wp1e.BestSecs
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("file-count vs entropy best: %.0f vs %.0f", wp1.BestSecs, wp1e.BestSecs)
	}
}

func TestMaintShape(t *testing.T) {
	res := runQuick(t, "maint").(MaintResult)
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Metadata checkpoints won budget in the shared selector — there is
	// no side scheduler to credit.
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoint actions selected under the shared budget")
	}
	if res.DataCompactions == 0 {
		t.Fatal("unified pipeline stopped compacting data")
	}
	// The data-only regime's metadata log grows without bound; the
	// unified regime holds a steady state.
	if res.MetaGrowthDataOnly < 1.3 {
		t.Fatalf("data-only metadata growth = %.2fx, want unbounded growth", res.MetaGrowthDataOnly)
	}
	if res.MetaGrowthUnified > 1.15 {
		t.Fatalf("unified metadata growth = %.2fx, want steady state", res.MetaGrowthUnified)
	}
	if res.UnifiedFinalMeta >= res.DataOnlyFinalMeta/2 {
		t.Fatalf("unified final metadata %d not well below data-only %d",
			res.UnifiedFinalMeta, res.DataOnlyFinalMeta)
	}
	// Fewer metadata objects means fewer planning opens on the NameNode.
	if res.UnifiedMetaOpens >= res.DataOnlyMetaOpens {
		t.Fatalf("unified metadata opens %d >= data-only %d",
			res.UnifiedMetaOpens, res.DataOnlyMetaOpens)
	}
	if res.UnifiedUtilization >= res.DataOnlyUtilization {
		t.Fatalf("unified NameNode utilization %.4f >= data-only %.4f",
			res.UnifiedUtilization, res.DataOnlyUtilization)
	}
}

func TestSchedShape(t *testing.T) {
	res := runQuick(t, "sched").(SchedResult)
	if len(res.ByWorkers) != 5 || len(res.ByWriters) != 4 {
		t.Fatalf("samples = %d/%d", len(res.ByWorkers), len(res.ByWriters))
	}
	// Every worker-count point schedules the same ranked plan.
	jobs := res.ByWorkers[0].Jobs
	for _, s := range res.ByWorkers {
		if s.Jobs != jobs {
			t.Fatalf("plans differ across worker counts: %d vs %d jobs", s.Jobs, jobs)
		}
	}
	// Makespan shrinks monotonically-ish with workers; 8 workers must be
	// measurably faster than 1 (the acceptance criterion).
	w := map[int]SchedWorkerSample{}
	for _, s := range res.ByWorkers {
		w[s.Workers] = s
	}
	if w[8].Makespan >= w[1].Makespan {
		t.Fatalf("8-worker makespan %v not below 1-worker %v", w[8].Makespan, w[1].Makespan)
	}
	if w[8].Speedup < 2 {
		t.Fatalf("8-worker speedup %.2fx, want ≥2x", w[8].Speedup)
	}
	// Conflicts are zero on a quiet lake and grow with writer pressure.
	if res.ByWriters[0].Conflicts != 0 {
		t.Fatalf("quiet lake conflicts = %d", res.ByWriters[0].Conflicts)
	}
	last := res.ByWriters[len(res.ByWriters)-1]
	if last.Conflicts == 0 {
		t.Fatal("heavy writer traffic produced no conflicts")
	}
	if first := res.ByWriters[1]; last.ConflictRate < first.ConflictRate {
		t.Fatalf("conflict rate fell with writer rate: %.3f -> %.3f",
			first.ConflictRate, last.ConflictRate)
	}
}

func TestRendersContainHeaders(t *testing.T) {
	for _, pair := range [][2]string{
		{"fig1", "Raw ingestion"},
		{"fig3", "after compaction"},
		{"table1", "cluster"},
	} {
		res := runQuick(t, pair[0])
		if !strings.Contains(res.Render(), pair[1]) {
			t.Fatalf("%s render missing %q:\n%s", pair[0], pair[1], res.Render())
		}
	}
}

func TestPersistExperimentShape(t *testing.T) {
	res := runQuick(t, "persist").(PersistResult)
	if res.Versions == 0 || res.Checkpoints == 0 || res.LogFiles == 0 {
		t.Fatalf("degenerate log: %+v", res)
	}
	if !res.StatesMatch {
		t.Fatal("recovery paths reconstructed divergent states")
	}
	// Checkpoint resume must clearly beat a full tail replay. The
	// committed BENCH_autocomp.json records >10x at full scale; the
	// unit-test bar is loose because CI timing is noisy.
	if res.Speedup < 2 {
		t.Fatalf("checkpoint resume speedup = %.1fx, want >= 2x", res.Speedup)
	}
}

func TestIncrementalShape(t *testing.T) {
	res := runQuick(t, "incr").(IncrResult)
	if len(res.Samples) != 3 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		// Decision parity: the incremental plane selects the exact plans
		// the full scan does, cycle by cycle.
		if !s.PlansMatch {
			t.Fatalf("%d tables: selected plans diverged from full scan", s.Tables)
		}
		// Observe cost collapses from O(fleet) to O(dirty).
		if s.IncrObserves >= s.FullObserves {
			t.Fatalf("%d tables: incr observes %.0f >= full %.0f",
				s.Tables, s.IncrObserves, s.FullObserves)
		}
	}
	// Full-scan cost grows with fleet size...
	if res.Samples[2].FullObserves <= res.Samples[0].FullObserves*2 {
		t.Fatalf("full observes do not track fleet size: %.0f vs %.0f",
			res.Samples[0].FullObserves, res.Samples[2].FullObserves)
	}
	// ...while the incremental plane observes a large factor less at the
	// largest point (the acceptance bar is 10x at 100k tables on the
	// full configuration; the scaled-down quick sweep clears 5x).
	last := res.Samples[len(res.Samples)-1]
	if last.Ratio < 5 {
		t.Fatalf("observe ratio at %d tables = %.1fx, want >= 5x", last.Tables, last.Ratio)
	}
}
