package experiments

import (
	"fmt"
	"runtime"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/decideshard"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/metrics"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Sharded decide plane: decide wall time vs shard count ---

// ShardSample is one shard-count point of the decide-plane sweep.
type ShardSample struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// DecideMS is the measured decide wall time (best of the reps) and
	// MeasuredSpeedup the serial baseline divided by it. On a host with
	// fewer cores than workers the measured number shows sharding
	// overhead, not the parallel win.
	DecideMS        float64 `json:"decide_ms"`
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// CriticalPathMS is the slowest shard's pipeline+rank chain plus the
	// serial merge — what decide wall time becomes on >= Shards cores —
	// and ProjectedSpeedup the serial baseline divided by that.
	CriticalPathMS   float64 `json:"critical_path_ms"`
	ProjectedSpeedup float64 `json:"projected_speedup"`
	// ParityOK reports whether the sharded decision fingerprint was
	// byte-identical to the serial baseline's.
	ParityOK bool `json:"parity_ok"`
}

// ShardResult characterizes the sharded decide plane: the decision
// bytes never change with the shard count while the decide critical
// path shrinks toward the slowest shard plus the merge.
type ShardResult struct {
	Tables     int
	Gomaxprocs int
	// SerialMS is the serial (unsharded) decide baseline.
	SerialMS float64
	Samples  []ShardSample
}

// ID implements Result.
func (ShardResult) ID() string { return "shard" }

// Title implements Result.
func (ShardResult) Title() string {
	return "Sharded decide plane: decide time vs shard count, byte parity"
}

// Render implements Result.
func (r ShardResult) Render() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		parity := "YES"
		if !s.ParityOK {
			parity = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Shards),
			fmt.Sprintf("%d", s.Workers),
			fmt.Sprintf("%.1f", s.DecideMS),
			fmt.Sprintf("%.2fx", s.MeasuredSpeedup),
			fmt.Sprintf("%.1f", s.CriticalPathMS),
			fmt.Sprintf("%.2fx", s.ProjectedSpeedup),
			parity,
		})
	}
	head := fmt.Sprintf(
		"%d tables, serial decide %.1f ms, GOMAXPROCS=%d\n"+
			"measured wall needs cores to show the win (workers are capped at GOMAXPROCS);\n"+
			"critical path = slowest shard (pipeline+rank) + merge = decide wall on >= shards cores\n",
		r.Tables, r.SerialMS, r.Gomaxprocs)
	return head + metrics.RenderTable(
		[]string{"Shards", "Workers", "Decide ms", "Wall speedup", "Crit path ms", "Proj speedup", "Parity"}, rows)
}

// Details implements the benchrunner's optional detail hook, landing
// the sweep's raw numbers in the machine-readable bench trajectory.
func (r ShardResult) Details() any {
	return struct {
		Tables     int           `json:"tables"`
		Gomaxprocs int           `json:"gomaxprocs"`
		SerialMS   float64       `json:"serial_decide_ms"`
		Samples    []ShardSample `json:"samples"`
	}{r.Tables, r.Gomaxprocs, r.SerialMS, r.Samples}
}

// RunShard sweeps the decide plane across shard counts on identically
// seeded fleets under the unified maintenance pipeline. Per point it
// measures decide wall time (best of reps), reads the engine's
// per-shard timing for the critical-path projection, and asserts
// byte-identical decision fingerprints against the serial baseline.
func RunShard(seed int64, quick bool) (Result, error) {
	// The shard sweep stays at paper scale even under -quick: the decide
	// phase must be large enough (100k tables) for the per-shard timing
	// split to dominate jitter, and the committed bench trajectory
	// records the 100k point. Quick only trims the timing reps.
	tables := 100_000
	reps := 3
	if quick {
		reps = 2
	}
	shardCounts := []int{1, 2, 4, 16}
	model := fleet.DefaultModel(512 * storage.MB)
	pol := maintenance.DefaultPolicy()
	sel := core.TopK{K: 50}

	// mkSvc builds one aged fleet and its maintenance decide pipeline;
	// identical seeds make every variant's lake byte-identical.
	mkSvc := func(dec core.Decider) (*core.Service, error) {
		cfg := fleetConfig(seed, quick)
		cfg.InitialTables = tables
		f := fleet.New(cfg, sim.NewClock())
		f.AdvanceDay()
		c := f.MaintenanceConfig(sel, model, pol)
		c.Decider = dec
		return core.NewService(c)
	}
	// Decide is a pure observe→orient→decide pass (no act), so timing
	// reps against one fleet re-decides the same state. Both the wall
	// time and the critical path take the best rep, damping scheduler
	// noise the same way for the measured and projected columns.
	timeDecide := func(svc *core.Service, eng *decideshard.Engine) (*core.Decision, time.Duration, time.Duration, error) {
		var best, bestCrit time.Duration
		var d *core.Decision
		if _, err := svc.Decide(); err != nil { // untimed warmup
			return nil, 0, 0, err
		}
		for i := 0; i < reps; i++ {
			start := time.Now()
			di, err := svc.Decide()
			if err != nil {
				return nil, 0, 0, err
			}
			el := time.Since(start)
			crit := el
			if eng != nil && eng.Shards() > 1 {
				crit = eng.LastCycle().CriticalPath()
			}
			if i == 0 || el < best {
				best = el
			}
			if i == 0 || crit < bestCrit {
				bestCrit = crit
			}
			d = di
		}
		return d, best, bestCrit, nil
	}

	serialSvc, err := mkSvc(nil)
	if err != nil {
		return nil, err
	}
	dSerial, serialBest, _, err := timeDecide(serialSvc, nil)
	if err != nil {
		return nil, err
	}
	fpSerial := testkit.DecisionFingerprint(dSerial)

	res := ShardResult{
		Tables:     tables,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		SerialMS:   float64(serialBest) / float64(time.Millisecond),
	}
	for _, shards := range shardCounts {
		eng := decideshard.New(decideshard.Options{Shards: shards})
		svc, err := mkSvc(eng.Decide)
		if err != nil {
			return nil, err
		}
		d, best, critical, err := timeDecide(svc, eng)
		if err != nil {
			return nil, err
		}
		s := ShardSample{
			Shards:   shards,
			Workers:  eng.Workers(),
			DecideMS: float64(best) / float64(time.Millisecond),
			ParityOK: testkit.DecisionFingerprint(d) == fpSerial,
		}
		if s.DecideMS > 0 {
			s.MeasuredSpeedup = res.SerialMS / s.DecideMS
		}
		s.CriticalPathMS = float64(critical) / float64(time.Millisecond)
		if s.CriticalPathMS > 0 {
			s.ProjectedSpeedup = res.SerialMS / s.CriticalPathMS
		}
		res.Samples = append(res.Samples, s)
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "shard", Title: ShardResult{}.Title(), Run: RunShard})
}
