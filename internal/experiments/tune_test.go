package experiments

import "testing"

func TestTuneShape(t *testing.T) {
	res := runQuick(t, "tune").(TuneResult)
	if len(res.Samples) != 3 {
		t.Fatalf("samples = %d, want cfo/random/grid", len(res.Samples))
	}
	byOpt := map[string]TuneSample{}
	for _, s := range res.Samples {
		if s.Trials != res.Budget {
			t.Fatalf("%s: trials = %d, want the full budget %d", s.Optimizer, s.Trials, res.Budget)
		}
		if len(s.Trajectory) != s.Trials {
			t.Fatalf("%s: trajectory has %d points for %d trials", s.Optimizer, len(s.Trajectory), s.Trials)
		}
		byOpt[s.Optimizer] = s
	}
	// CFO warm-starts at the base spec, so its trajectory opens at
	// exactly the baseline and its winner can never be worse.
	cfo := byOpt["cfo"]
	if cfo.Trajectory[0] != 1.0 {
		t.Fatalf("cfo trajectory opens at %v, want the 1.0 warm start", cfo.Trajectory[0])
	}
	if cfo.BestComposite > 1.0 {
		t.Fatalf("cfo best composite %v worse than the baseline", cfo.BestComposite)
	}
	// The loop is deterministic: at the fixed test seed the hill-climb
	// strictly improves on the default spec.
	if cfo.ImprovementPct <= 0 {
		t.Fatalf("cfo improvement %v%%, want > 0", cfo.ImprovementPct)
	}
}
