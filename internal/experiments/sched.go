package experiments

import (
	"fmt"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/metrics"
	"autocomp/internal/scheduler"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Concurrent execution plane: makespan and writer conflicts ---

// SchedWorkerSample is one worker-count point of the makespan sweep.
type SchedWorkerSample struct {
	Workers     int
	Jobs        int
	Makespan    time.Duration
	Utilization float64
	// Speedup is makespan(1 worker) / makespan(this).
	Speedup float64
}

// SchedWriterSample is one writer-rate point of the conflict sweep.
type SchedWriterSample struct {
	WriterRate float64 // commits/hour fleet-wide
	Conflicts  int
	Retries    int
	Conflicted int // jobs that exhausted their attempts
	Done       int
	// ConflictRate is aborted commits over total commit attempts.
	ConflictRate float64
}

// SchedResult characterizes the scheduler subsystem: how makespan scales
// with worker count on one fixed ranked plan (per-table leases and
// budgets limiting the parallelism), and how the optimistic-commit
// conflict rate grows with the live writer rate (§4.4's
// writer-vs-compactor races; scheduling merges under resource
// constraints per arXiv:1407.3008).
type SchedResult struct {
	ByWorkers []SchedWorkerSample
	ByWriters []SchedWriterSample
}

// ID implements Result.
func (SchedResult) ID() string { return "sched" }

// Title implements Result.
func (SchedResult) Title() string {
	return "Execution plane: makespan vs workers, commit conflicts vs writer rate"
}

// Render implements Result.
func (r SchedResult) Render() string {
	rows := make([][]string, 0, len(r.ByWorkers))
	for _, s := range r.ByWorkers {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Workers),
			fmt.Sprintf("%d", s.Jobs),
			s.Makespan.Round(time.Second).String(),
			fmt.Sprintf("%.0f%%", 100*s.Utilization),
			fmt.Sprintf("%.2fx", s.Speedup),
		})
	}
	body := metrics.RenderTable(
		[]string{"Workers", "Jobs", "Makespan", "Utilization", "Speedup"}, rows)
	rows = rows[:0]
	for _, s := range r.ByWriters {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f/h", s.WriterRate),
			fmt.Sprintf("%d", s.Conflicts),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.Conflicted),
			fmt.Sprintf("%d", s.Done),
			fmt.Sprintf("%.1f%%", 100*s.ConflictRate),
		})
	}
	body += "\n" + metrics.RenderTable(
		[]string{"Writer rate", "Conflicts", "Retries", "Gave up", "Done", "Conflict rate"}, rows)
	return body
}

// RunSched ages one fleet per configuration point from the same seed (so
// every point decides the same ranked plan) and runs a single scheduled
// maintenance cycle, sweeping worker count with quiet writers and then
// writer rate at a fixed worker count.
func RunSched(seed int64, quick bool) (Result, error) {
	ageDays := 5
	tables := 600
	if quick {
		ageDays, tables = 3, 300
	}
	model := fleet.DefaultModel(512 * storage.MB)

	runCycle := func(opts fleet.SchedOptions) (scheduler.Stats, error) {
		cfg := fleetConfig(seed, quick)
		cfg.InitialTables = tables
		f := fleet.New(cfg, sim.NewClock())
		for d := 0; d < ageDays; d++ {
			f.AdvanceDay()
		}
		svc, err := f.ScheduledService(core.TopK{K: 120}, model, maintenance.DefaultPolicy(), opts)
		if err != nil {
			return scheduler.Stats{}, err
		}
		_, stats, err := svc.RunCycle()
		return stats, err
	}

	res := SchedResult{}
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8, 16} {
		st, err := runCycle(fleet.SchedOptions{Workers: w, Shards: 4})
		if err != nil {
			return nil, err
		}
		s := SchedWorkerSample{
			Workers:     w,
			Jobs:        st.Submitted,
			Makespan:    st.Makespan,
			Utilization: st.Utilization(),
		}
		if w == 1 {
			base = st.Makespan
		}
		if st.Makespan > 0 {
			s.Speedup = float64(base) / float64(st.Makespan)
		}
		res.ByWorkers = append(res.ByWorkers, s)
	}

	for _, rate := range []float64{0, 30, 120, 480} {
		st, err := runCycle(fleet.SchedOptions{Workers: 8, Shards: 4, WriterCommitsPerHour: rate})
		if err != nil {
			return nil, err
		}
		attempts := st.Done + st.Skipped + st.Failed + st.Conflicts
		s := SchedWriterSample{
			WriterRate: rate,
			Conflicts:  st.Conflicts,
			Retries:    st.Retries,
			Conflicted: st.Conflicted,
			Done:       st.Done,
		}
		if attempts > 0 {
			s.ConflictRate = float64(st.Conflicts) / float64(attempts)
		}
		res.ByWriters = append(res.ByWriters, s)
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "sched", Title: SchedResult{}.Title(), Run: RunSched})
}
