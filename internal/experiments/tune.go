package experiments

import (
	"fmt"
	"runtime"
	"time"

	"autocomp/internal/autotune"
	"autocomp/internal/metrics"
	"autocomp/internal/scenario"
)

// --- Closed-loop policy tuning: search throughput and convergence ---

// TuneSample is one optimizer's tune run over the micro scenario.
type TuneSample struct {
	Optimizer string `json:"optimizer"`
	Trials    int    `json:"trials"`
	Invalid   int    `json:"invalid"`
	// BestComposite is the winner's score against the default spec
	// (1.0 = the baseline; lower is better) and ImprovementPct how far
	// it strictly beats it.
	BestComposite  float64 `json:"best_composite"`
	ImprovementPct float64 `json:"improvement_pct"`
	// BestTrial is where the search found the winner — convergence
	// speed in trials, the x-axis the paper's §6.3 plots report.
	BestTrial int `json:"best_trial"`
	// WallMS is the whole tune's wall time; TrialsPerSec and EvalMS the
	// derived throughput numbers (EvalMS = mean wall per scenario
	// replay, the harness's unit of work).
	WallMS       float64 `json:"wall_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	EvalMS       float64 `json:"eval_ms"`
	// Trajectory is the best-so-far composite after each trial.
	Trajectory []float64 `json:"trajectory"`
}

// TuneResult characterizes the closed tuning loop: every optimizer
// searches the same space over the same scenario with the same tune
// seed, so the samples compare search strategies, not workloads.
type TuneResult struct {
	Budget   int
	Seed     int64
	Workers  int
	Scenario string
	Dims     int
	Samples  []TuneSample
}

// ID implements Result.
func (TuneResult) ID() string { return "tune" }

// Title implements Result.
func (TuneResult) Title() string {
	return "Closed-loop policy tuning: optimizer convergence and search throughput (§6.3)"
}

// Render implements Result.
func (r TuneResult) Render() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{
			s.Optimizer,
			fmt.Sprintf("%d", s.Trials),
			fmt.Sprintf("%d", s.Invalid),
			fmt.Sprintf("%.4f", s.BestComposite),
			fmt.Sprintf("%.2f%%", s.ImprovementPct),
			fmt.Sprintf("%d", s.BestTrial),
			fmt.Sprintf("%.0f", s.WallMS),
			fmt.Sprintf("%.1f", s.TrialsPerSec),
			fmt.Sprintf("%.2f", s.EvalMS),
		})
	}
	head := fmt.Sprintf(
		"budget %d trials, tune seed %d, %d workers, scenario %s, %d-dim space\n"+
			"composite: weighted score vs the default spec (1.0 = baseline, lower is better)\n",
		r.Budget, r.Seed, r.Workers, r.Scenario, r.Dims)
	return head + metrics.RenderTable(
		[]string{"Optimizer", "Trials", "Invalid", "Best", "Improvement", "Best@", "Wall ms", "Trials/s", "Eval ms"}, rows)
}

// Details implements the benchrunner's optional detail hook, landing
// the convergence trajectories in the machine-readable bench
// trajectory.
func (r TuneResult) Details() any {
	return struct {
		Budget   int          `json:"budget"`
		Seed     int64        `json:"seed"`
		Workers  int          `json:"workers"`
		Scenario string       `json:"scenario"`
		Dims     int          `json:"dims"`
		Samples  []TuneSample `json:"samples"`
	}{r.Budget, r.Seed, r.Workers, r.Scenario, r.Dims, r.Samples}
}

// tuneSpace mirrors examples/tuning/space.json (inline so the
// experiment does not depend on the working directory).
func tuneSpace() *autotune.Space {
	return &autotune.Space{
		Name: "default-exec",
		Dimensions: []autotune.Dimension{
			{Field: "selector.budget_gbhr", Min: 8, Max: 65536, Log: true},
			{Field: "execution.workers", Min: 1, Max: 32},
			{Field: "objectives.file_count_reduction", Min: 0.05, Max: 0.75},
			{Field: "objectives.compute_cost_gbhr", Min: 0.05, Max: 0.75},
		},
	}
}

// tuneScenario mirrors examples/scenarios/tuning-micro.json.
func tuneScenario() *scenario.Spec {
	return &scenario.Spec{
		Name: "tuning-micro",
		Seed: 1,
		Days: 4,
		Fleet: scenario.FleetSpec{
			InitialTables: 80,
			Databases:     4,
		},
		Workload: []scenario.PatternSpec{{Kind: "hot-skew", Tables: 4, Commits: 12}},
		Faults:   &scenario.FaultSpec{WriterCommitsPerHour: 50},
	}
}

// RunTune runs the closed tuning loop once per optimizer over the
// micro scenario and records convergence plus search throughput. The
// loop is deterministic, so the recorded composites are exact
// regression surfaces; only the wall-time columns are measurements.
func RunTune(seed int64, quick bool) (Result, error) {
	budget := 24
	if quick {
		budget = 8
	}
	sc := tuneScenario()
	workers := runtime.GOMAXPROCS(0)
	res := TuneResult{
		Budget:   budget,
		Seed:     seed,
		Workers:  workers,
		Scenario: sc.Name,
		Dims:     len(tuneSpace().Dimensions),
	}
	for _, opt := range []string{"cfo", "random", "grid"} {
		evals := 0
		start := time.Now()
		out, err := autotune.Run(autotune.Config{
			Space:     tuneSpace(),
			Scenarios: []*scenario.Spec{sc},
			Optimizer: opt,
			Budget:    budget,
			Seed:      seed,
			Workers:   workers,
			OnTrial: func(rec autotune.TrialRecord) {
				evals += len(rec.Scenarios)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("tune %s: %w", opt, err)
		}
		wall := time.Since(start)
		rep := out.Report
		sample := TuneSample{
			Optimizer:      opt,
			Trials:         rep.Trials,
			Invalid:        rep.Invalid,
			BestComposite:  rep.BestComposite,
			ImprovementPct: rep.ImprovementPct,
			BestTrial:      rep.BestTrial,
			WallMS:         float64(wall.Milliseconds()),
			Trajectory:     rep.Trajectory,
		}
		if secs := wall.Seconds(); secs > 0 {
			sample.TrialsPerSec = float64(rep.Trials) / secs
			// +1 for the baseline pass's replays.
			if evals > 0 {
				sample.EvalMS = wall.Seconds() * 1000 / float64(evals+len(rep.Scenarios))
			}
		}
		res.Samples = append(res.Samples, sample)
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "tune", Title: TuneResult{}.Title(), Run: RunTune})
}
