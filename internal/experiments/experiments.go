// Package experiments contains one driver per table and figure of the
// paper's evaluation (§2, §6, §7). Each driver sets up the simulated
// systems, runs the experiment, and returns a Result that renders the
// same rows/series the paper reports. DESIGN.md §4 is the index.
//
// Absolute numbers come from a simulator, not the authors' testbed; the
// drivers are judged on shape: who wins, by roughly what factor, and
// where crossovers fall. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"sort"
)

// Result is one reproduced table/figure.
type Result interface {
	// ID is the experiment identifier ("fig6", "table1", ...).
	ID() string
	// Title describes the experiment.
	Title() string
	// Render returns the plain-text table(s) of the result.
	Render() string
}

// Spec describes a runnable experiment.
type Spec struct {
	ExpID string
	Title string
	// Run executes the experiment. quick selects a scaled-down
	// configuration with the same shape (used by unit tests and fast
	// benchmark passes); the default configuration follows the paper's
	// parameters.
	Run func(seed int64, quick bool) (Result, error)
}

// registry of all experiments, populated by the fig*.go files.
var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.ExpID]; dup {
		panic("experiments: duplicate id " + s.ExpID)
	}
	registry[s.ExpID] = s
}

// All returns the registered experiments sorted by ID.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ExpID < out[j].ExpID })
	return out
}

// Run executes one experiment by ID.
func Run(id string, seed int64, quick bool) (Result, error) {
	s, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids())
	}
	return s.Run(seed, quick)
}

func ids() []string {
	var out []string
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// textResult is a ready-rendered result.
type textResult struct {
	id, title, body string
}

func (r textResult) ID() string     { return r.id }
func (r textResult) Title() string  { return r.title }
func (r textResult) Render() string { return r.body }
