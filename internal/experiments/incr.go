package experiments

import (
	"fmt"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/maintenance"
	"autocomp/internal/metrics"
	"autocomp/internal/policy"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// --- Incremental observation plane: observe cost vs fleet size ---

// IncrSample is one fleet-size point of the incremental sweep.
type IncrSample struct {
	Tables int
	Cycles int
	// FullObserves and IncrObserves are mean per-cycle Observe calls
	// (the expensive inner observation) in each mode, measured after the
	// cold-start cycle.
	FullObserves float64
	IncrObserves float64
	// DirtyPerCycle is the mean number of tables the incremental
	// connector served per measured cycle.
	DirtyPerCycle float64
	// Ratio is FullObserves / IncrObserves.
	Ratio float64
	// PlansMatch reports whether every cycle's selected plan (including
	// cold start) was byte-identical between the two modes.
	PlansMatch bool
}

// IncrResult characterizes the incremental observation plane: full-scan
// observation cost grows with fleet size while incremental cost grows
// with the dirty set, and — with an every-commit trigger — the selected
// plans are identical, so the savings are free of decision drift.
type IncrResult struct {
	// WriteFrac is the per-table daily write probability of the sweep.
	WriteFrac float64
	Samples   []IncrSample
}

// ID implements Result.
func (IncrResult) ID() string { return "incr" }

// Title implements Result.
func (IncrResult) Title() string {
	return "Incremental observation: observe calls vs fleet size, decision parity"
}

// Render implements Result.
func (r IncrResult) Render() string {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		match := "YES"
		if !s.PlansMatch {
			match = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Tables),
			fmt.Sprintf("%.0f", s.FullObserves),
			fmt.Sprintf("%.0f", s.IncrObserves),
			fmt.Sprintf("%.0f", s.DirtyPerCycle),
			fmt.Sprintf("%.1fx", s.Ratio),
			match,
		})
	}
	head := fmt.Sprintf("daily write fraction %.2f; observes are per-cycle means after cold start\n",
		r.WriteFrac)
	return head + metrics.RenderTable(
		[]string{"Tables", "Full observes", "Incr observes", "Dirty/cycle", "Ratio", "Plans match"}, rows)
}

// countingObserver counts inner Observe calls — the full-scan baseline's
// cost meter.
type countingObserver struct {
	inner core.Observer
	calls *int64
}

func (o countingObserver) Observe(c *core.Candidate) (core.Stats, error) {
	*o.calls++
	return o.inner.Observe(c)
}

// RunIncr ages two identically seeded fleets per size point — one under
// the full-scan pipeline, one under the incremental observation plane
// with an every-commit trigger — acting on both each cycle, and
// compares per-cycle observe cost and the selected plans. At a 1% daily
// write rate, full-scan observation cost is O(fleet) while incremental
// cost tracks the dirty set; the plans must stay byte-identical, so the
// two fleets evolve in lockstep.
func RunIncr(seed int64, quick bool) (Result, error) {
	sizes := []int{1000, 10_000, 100_000}
	cycles := 6 // first cycle is cold start, excluded from means
	if quick {
		sizes = []int{300, 1000, 3000}
		cycles = 4
	}
	const writeFrac = 0.01
	model := fleet.DefaultModel(512 * storage.MB)
	pol := maintenance.DefaultPolicy()
	selector := core.TopK{K: 50}

	res := IncrResult{WriteFrac: writeFrac}
	for _, size := range sizes {
		cfg := fleetConfig(seed, quick)
		cfg.InitialTables = size
		cfg.DailyWriteProb = writeFrac

		fFull := fleet.New(cfg, sim.NewClock())
		fIncr := fleet.New(cfg, sim.NewClock())

		var fullCalls int64
		fullCfg := fFull.MaintenanceConfig(selector, model, pol)
		fullCfg.Observer = countingObserver{inner: fullCfg.Observer, calls: &fullCalls}
		fullSvc, err := core.NewService(fullCfg)
		if err != nil {
			return nil, err
		}
		// The incremental side is expressed as a policy spec (the
		// full-scan side stays hand-wired): the experiment's per-cycle
		// PlansMatch check then doubles as a spec-compiled vs hand-wired
		// parity assertion.
		incrSpec := policy.DefaultSpec()
		incrSpec.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(selector.K)}}
		incrSpec.Execution = nil
		incrSpec.Trigger = &policy.TriggerSpec{EveryCommits: 1}
		incrSS, err := fIncr.ServiceFromSpec(incrSpec, model, fleet.SpecRunOptions{})
		if err != nil {
			return nil, err
		}
		incrSvc, feed := incrSS.Svc, incrSS.Feed

		s := IncrSample{Tables: size, Cycles: cycles, PlansMatch: true}
		var prevMisses int64
		var fullSum, incrSum, dirtySum float64
		for c := 0; c < cycles; c++ {
			fFull.AdvanceDay()
			fIncr.AdvanceDay()
			fullBefore := fullCalls
			dFull, err := fullSvc.Decide()
			if err != nil {
				return nil, err
			}
			dIncr, err := incrSvc.Decide()
			if err != nil {
				return nil, err
			}
			if testkit.PlanID(dFull) != testkit.PlanID(dIncr) {
				s.PlansMatch = false
			}
			if _, err := fullSvc.Act(dFull); err != nil {
				return nil, err
			}
			if _, err := incrSvc.Act(dIncr); err != nil {
				return nil, err
			}
			cc := feed.Cache.Counters()
			if c > 0 { // steady state: skip the cold-start full scan
				fullSum += float64(fullCalls - fullBefore)
				incrSum += float64(cc.Misses - prevMisses)
				dirtySum += float64(feed.LastScan().Scanned)
			}
			prevMisses = cc.Misses
		}
		measured := float64(cycles - 1)
		s.FullObserves = fullSum / measured
		s.IncrObserves = incrSum / measured
		s.DirtyPerCycle = dirtySum / measured
		if s.IncrObserves > 0 {
			s.Ratio = s.FullObserves / s.IncrObserves
		}
		res.Samples = append(res.Samples, s)
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "incr", Title: IncrResult{}.Title(), Run: RunIncr})
}
