package experiments

import (
	"fmt"
	"time"

	"autocomp/internal/bench"
	"autocomp/internal/engine"
	"autocomp/internal/lst"
	"autocomp/internal/metrics"
	"autocomp/internal/storage"
	"autocomp/internal/workload"
)

// Fig1Result reproduces Figure 1: file-size distribution of raw ingested
// data (the tuned central pipeline, ~512 MB files) versus user-derived
// data (untuned end-user jobs, heavily small).
type Fig1Result struct {
	Raw     *metrics.Histogram
	Derived *metrics.Histogram
}

// ID implements Result.
func (Fig1Result) ID() string { return "fig1" }

// Title implements Result.
func (Fig1Result) Title() string {
	return "Figure 1: file size distribution, raw ingestion vs user-derived data"
}

// Render implements Result.
func (r Fig1Result) Render() string {
	labels := r.Raw.BucketLabels(metrics.FormatBytes)
	var rows [][]string
	rawTotal, derTotal := r.Raw.Total(), r.Derived.Total()
	for i, label := range labels {
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.1f%%", pct(r.Raw.Counts[i], rawTotal)),
			fmt.Sprintf("%.1f%%", pct(r.Derived.Counts[i], derTotal)),
		})
	}
	return metrics.RenderTable([]string{"File size", "Raw ingestion", "User-derived"}, rows)
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// RawFraction512 returns the fraction of raw-ingestion files in the
// >=256 MB buckets (the pipeline targets 512 MB).
func (r Fig1Result) RawFraction512() float64 {
	n := len(r.Raw.Counts)
	var big int64
	big = r.Raw.Counts[n-1] + r.Raw.Counts[n-2]
	return float64(big) / float64(r.Raw.Total())
}

// DerivedSmallFraction returns the fraction of user-derived files under
// 128 MB.
func (r Fig1Result) DerivedSmallFraction() float64 {
	return r.Derived.FractionBelow(128 * storage.MB)
}

// RunFig1 simulates both writer populations against the same lake.
func RunFig1(seed int64, quick bool) (Result, error) {
	env := bench.NewEnv(bench.EnvConfig{Seed: seed})
	hours := 24
	ingestPerHour := int64(6 * storage.GB)
	if quick {
		hours = 6
	}

	if _, err := env.CP.CreateDatabase("raw", "ingestion", 0); err != nil {
		return nil, err
	}
	if _, err := env.CP.CreateDatabase("derived", "users", 0); err != nil {
		return nil, err
	}

	// Raw ingestion: the central Gobblin-style pipeline writes every
	// five minutes and incrementally compacts into hourly partitions of
	// ~512 MB files (§2).
	rawTbl, err := env.CP.CreateTable("raw", lst.TableConfig{
		Name: "events",
		Spec: lst.PartitionSpec{Column: "ts", Transform: lst.TransformDay},
	})
	if err != nil {
		return nil, err
	}
	for h := 0; h < hours; h++ {
		part := fmt.Sprintf("2024-06-%02d", 1+h/24)
		// 12 five-minute micro-batches...
		var paths []string
		for b := 0; b < 12; b++ {
			res := env.Engine.Exec(engine.Query{
				App: "ingest", Table: rawTbl, Kind: engine.Insert,
				Bytes: ingestPerHour / 12, TargetPartitions: []string{part},
				Parallelism: 4,
			})
			if res.Failed() {
				return nil, res.Err
			}
			_ = paths
		}
		// ... incrementally compacted into ~512 MB files each hour.
		env.Exec.CompactPartition(rawTbl, part)
		env.Clock.Advance(time.Hour)
	}

	// User-derived data: untuned CAB-style loads plus update churn.
	gen := workload.NewCAB(workload.CABConfig{
		RawDataBytes: 40 * storage.GB,
		Databases:    4,
		Duration:     time.Hour,
		Months:       6,
		Seed:         seed,
	})
	plan := gen.Plan()
	months := workload.MonthPartitions(6)
	var derivedTables []*lst.Table
	for _, dbp := range plan.Databases {
		for _, td := range dbp.Tables {
			tbl, err := env.CP.CreateTable("derived", lst.TableConfig{
				Name:   dbp.Name + "_" + td.Name,
				Schema: td.Schema,
				Spec:   td.Spec,
			})
			if err != nil {
				return nil, err
			}
			derivedTables = append(derivedTables, tbl)
			q := engine.Query{
				App: "user-job", Table: tbl, Kind: engine.Insert,
				Bytes:       workload.SizeOfShare(dbp.RawBytes, td.ShareOfData),
				Parallelism: dbp.LoadParallelism,
			}
			if td.Spec.IsPartitioned() {
				q.TargetPartitions = months
			}
			if res := env.Engine.Exec(q); res.Failed() {
				return nil, res.Err
			}
		}
	}
	// Update churn at untuned parallelism.
	for i, tbl := range derivedTables {
		if i%2 == 0 {
			env.Engine.Exec(engine.Query{
				App: "user-update", Table: tbl, Kind: engine.Update,
				ModifyFraction: 0.05,
			})
		}
	}

	bounds := []int64{32 * storage.MB, 64 * storage.MB, 128 * storage.MB, 256 * storage.MB, 512 * storage.MB}
	res := Fig1Result{
		Raw:     metrics.NewHistogram(bounds),
		Derived: metrics.NewHistogram(bounds),
	}
	for _, f := range rawTbl.LiveFiles() {
		res.Raw.Add(f.SizeBytes)
	}
	for _, tbl := range derivedTables {
		for _, f := range tbl.LiveFiles() {
			res.Derived.Add(f.SizeBytes)
		}
	}
	return res, nil
}

func init() {
	register(Spec{
		ExpID: "fig1",
		Title: Fig1Result{}.Title(),
		Run:   RunFig1,
	})
}
