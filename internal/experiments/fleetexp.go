package experiments

import (
	"fmt"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/metrics"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// fleetConfig scales the fleet for quick or full runs.
func fleetConfig(seed int64, quick bool) fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Seed = seed
	if quick {
		cfg.InitialTables = 400
		cfg.TablesPerMonth = 40
	}
	return cfg
}

// --- Figure 2: fleet file-size distribution across regimes ---

// Fig2Result reproduces Figure 2: the fleet's file-size distribution
// before compaction, after months of manual compaction, and after
// AutoComp — plus the small-file fractions the paper quotes (83% of
// files <128 MB before; 62% after manual; auto-compaction reduced the
// number of <128 MB files by up to 44%).
type Fig2Result struct {
	Before, AfterManual, AfterAuto [3]int64

	TinyFracBefore float64
	TinyFracManual float64
	TinyFracAuto   float64
	// TinyReductionPct is the percentage drop in the *count* of <128 MB
	// files from the pre-compaction peak to the auto-compaction regime.
	TinyReductionPct float64
}

// ID implements Result.
func (Fig2Result) ID() string { return "fig2" }

// Title implements Result.
func (Fig2Result) Title() string {
	return "Figure 2: file size distribution before/after manual and auto compaction"
}

// Render implements Result.
func (r Fig2Result) Render() string {
	frac := func(h [3]int64, b int) string {
		t := h[0] + h[1] + h[2]
		if t == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(h[b])/float64(t))
	}
	rows := [][]string{
		{"<128MB", frac(r.Before, 0), frac(r.AfterManual, 0), frac(r.AfterAuto, 0)},
		{"[128MB,512MB)", frac(r.Before, 1), frac(r.AfterManual, 1), frac(r.AfterAuto, 1)},
		{">=512MB", frac(r.Before, 2), frac(r.AfterManual, 2), frac(r.AfterAuto, 2)},
	}
	body := metrics.RenderTable([]string{"Bucket", "Before", "+Manual", "+AutoComp"}, rows)
	body += fmt.Sprintf("\nfiles <128MB reduced by %.0f%% vs pre-compaction (paper: up to 44%%)\n",
		r.TinyReductionPct)
	return body
}

// RunFig2 ages a fleet with no compaction, then months of daily manual
// top-100 compaction, then AutoComp with a compute budget.
func RunFig2(seed int64, quick bool) (Result, error) {
	clock := sim.NewClock()
	f := fleet.New(fleetConfig(seed, quick), clock)
	model := fleet.DefaultModel(512 * storage.MB)
	runner := fleet.Runner{Fleet: f, Model: model}

	days := func(n int, step func()) {
		for i := 0; i < n; i++ {
			f.AdvanceDay()
			if step != nil {
				step()
			}
		}
	}

	// Two months unmanaged.
	days(60, nil)
	res := Fig2Result{Before: f.Histogram(), TinyFracBefore: f.TinyFileFraction()}
	tinyBefore := res.Before[0]

	// Two months of daily manual compaction over a fixed susceptible
	// set (§7).
	manualSet := f.MostFragmented(100)
	days(60, func() { runner.CompactTables(manualSet) })
	res.AfterManual = f.Histogram()
	res.TinyFracManual = f.TinyFileFraction()

	// Two months of AutoComp under a daily budget (dynamic k).
	svc, err := f.Service(core.BudgetSelector{BudgetGBHr: 226 * 1024}, model)
	if err != nil {
		return nil, err
	}
	days(60, func() {
		if _, err := svc.RunOnce(); err != nil {
			panic(err)
		}
	})
	res.AfterAuto = f.Histogram()
	res.TinyFracAuto = f.TinyFileFraction()
	if tinyBefore > 0 {
		res.TinyReductionPct = 100 * float64(tinyBefore-res.AfterAuto[0]) / float64(tinyBefore)
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "fig2", Title: Fig2Result{}.Title(), Run: RunFig2})
}

// --- Figure 10a: manual vs auto compaction ---

// WeekStat is one week of fleet compaction activity.
type WeekStat struct {
	Week         int
	Regime       string
	FilesReduced int64
	TBHr         float64
	MeanK        float64
}

// Fig10aResult compares manual k=100 (weeks 0–2) against AutoComp top-10
// (weeks 3–5): the paper measured 6.59M files reduced per run manually
// vs 7.44M automatically (+12%) despite compacting 10× fewer tables.
type Fig10aResult struct {
	Weeks []WeekStat
	// ManualMeanFiles and AutoMeanFiles are per-week means per regime.
	ManualMeanFiles float64
	AutoMeanFiles   float64
	ManualMeanTBHr  float64
	AutoMeanTBHr    float64
}

// ID implements Result.
func (Fig10aResult) ID() string { return "fig10a" }

// Title implements Result.
func (Fig10aResult) Title() string {
	return "Figure 10a: files reduced and computation cost, manual k=100 → auto k=10"
}

// Render implements Result.
func (r Fig10aResult) Render() string {
	var rows [][]string
	for _, w := range r.Weeks {
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Week), w.Regime,
			fmt.Sprintf("%d", w.FilesReduced),
			fmt.Sprintf("%.1f", w.TBHr),
			fmt.Sprintf("%.0f", w.MeanK),
		})
	}
	body := metrics.RenderTable([]string{"Week", "Regime", "Files reduced", "App TBHr", "k"}, rows)
	gain := 0.0
	if r.ManualMeanFiles > 0 {
		gain = 100 * (r.AutoMeanFiles - r.ManualMeanFiles) / r.ManualMeanFiles
	}
	body += fmt.Sprintf("\nauto top-10 vs manual top-100: %+.0f%% files reduced per week (paper: +12%%)\n", gain)
	return body
}

// RunFig10a runs three weeks of each regime.
func RunFig10a(seed int64, quick bool) (Result, error) {
	clock := sim.NewClock()
	cfg := fleetConfig(seed, quick)
	// The manual set must be a small slice of the fleet, as in
	// production (100 of 21K+ tables), for its diminishing returns to
	// show against fleet-wide automatic selection.
	if cfg.InitialTables < 1200 {
		cfg.InitialTables = 1200
	}
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)
	runner := fleet.Runner{Fleet: f, Model: model}

	// Burn-in so manual compaction's fixed set is already partly healed
	// (the diminishing-returns state of §2/§7).
	manualSet := f.MostFragmented(100)
	for d := 0; d < 21; d++ {
		f.AdvanceDay()
		runner.CompactTables(manualSet)
	}

	res := Fig10aResult{}
	for w := 0; w < 3; w++ {
		var files int64
		var gbhr float64
		for d := 0; d < 7; d++ {
			f.AdvanceDay()
			fr, g := runner.CompactTables(manualSet)
			files += fr
			gbhr += g
		}
		res.Weeks = append(res.Weeks, WeekStat{
			Week: w + 1, Regime: "manual k=100",
			FilesReduced: files, TBHr: gbhr / 1024, MeanK: 100,
		})
		res.ManualMeanFiles += float64(files) / 3
		res.ManualMeanTBHr += gbhr / 1024 / 3
	}

	svc, err := f.Service(core.TopK{K: 10}, model)
	if err != nil {
		return nil, err
	}
	for w := 3; w < 6; w++ {
		var files int64
		var gbhr float64
		for d := 0; d < 7; d++ {
			f.AdvanceDay()
			rep, err := svc.RunOnce()
			if err != nil {
				return nil, err
			}
			files += int64(rep.FilesReduced)
			gbhr += rep.ActualGBHr
		}
		res.Weeks = append(res.Weeks, WeekStat{
			Week: w + 1, Regime: "auto k=10",
			FilesReduced: files, TBHr: gbhr / 1024, MeanK: 10,
		})
		res.AutoMeanFiles += float64(files) / 3
		res.AutoMeanTBHr += gbhr / 1024 / 3
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "fig10a", Title: Fig10aResult{}.Title(), Run: RunFig10a})
}

// --- Figure 10b: static k vs dynamic (budget) k ---

// Fig10bResult shows the week-22 transition from static k=100 to
// budget-constrained dynamic k (226 TBHr ⇒ k≈2500 in the paper).
type Fig10bResult struct {
	Weeks []WeekStat
}

// ID implements Result.
func (Fig10bResult) ID() string { return "fig10b" }

// Title implements Result.
func (Fig10bResult) Title() string {
	return "Figure 10b: impact of dynamic k tuning (budget 226 TBHr)"
}

// Render implements Result.
func (r Fig10bResult) Render() string {
	var rows [][]string
	for _, w := range r.Weeks {
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Week), w.Regime,
			fmt.Sprintf("%d", w.FilesReduced),
			fmt.Sprintf("%.1f", w.TBHr),
			fmt.Sprintf("%.0f", w.MeanK),
		})
	}
	return metrics.RenderTable([]string{"Week", "Regime", "Files reduced", "App TBHr", "k"}, rows)
}

// RunFig10b ages a fleet, runs static top-100 for two weeks, then the
// 226 TBHr budget selector for two weeks.
func RunFig10b(seed int64, quick bool) (Result, error) {
	clock := sim.NewClock()
	cfg := fleetConfig(seed, quick)
	// Static k=100 must be a small slice of the fleet (as with the 35K
	// production deployment) so that a backlog persists for dynamic k
	// to flush at the week-22 transition.
	if cfg.InitialTables < 2000 {
		cfg.InitialTables = 2000
	}
	f := fleet.New(cfg, clock)
	model := fleet.DefaultModel(512 * storage.MB)

	// Age to "week 21" with static auto-compaction running.
	staticSvc, err := f.Service(core.TopK{K: 100}, model)
	if err != nil {
		return nil, err
	}
	ageDays := 21 * 7
	if quick {
		ageDays = 5 * 7
	}
	for d := 0; d < ageDays; d++ {
		f.AdvanceDay()
		if _, err := staticSvc.RunOnce(); err != nil {
			return nil, err
		}
	}

	res := Fig10bResult{}
	week := 21
	runWeek := func(svc *core.Service, regime string) error {
		week++
		var files int64
		var gbhr, ks float64
		for d := 0; d < 7; d++ {
			f.AdvanceDay()
			rep, err := svc.RunOnce()
			if err != nil {
				return err
			}
			files += int64(rep.FilesReduced)
			gbhr += rep.ActualGBHr
			ks += float64(len(rep.Decision.Selected))
		}
		res.Weeks = append(res.Weeks, WeekStat{
			Week: week, Regime: regime, FilesReduced: files,
			TBHr: gbhr / 1024, MeanK: ks / 7,
		})
		return nil
	}
	if err := runWeek(staticSvc, "static k=100"); err != nil {
		return nil, err
	}
	budgetSvc, err := f.Service(core.BudgetSelector{BudgetGBHr: 226 * 1024}, model)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if err := runWeek(budgetSvc, "dynamic k (226 TBHr)"); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// DynamicKExceedsStatic reports whether the dynamic regime selected more
// candidates per run than the static one.
func (r Fig10bResult) DynamicKExceedsStatic() bool {
	return len(r.Weeks) >= 2 && r.Weeks[len(r.Weeks)-1].MeanK > r.Weeks[0].MeanK
}

func init() {
	register(Spec{ExpID: "fig10b", Title: Fig10bResult{}.Title(), Run: RunFig10b})
}

// --- Figure 10c: deployment growth vs file count ---

// MonthStat is one month of deployment statistics.
type MonthStat struct {
	Month     int
	Tables    int
	Files     int64
	OpenCalls int64
	Regime    string
}

// Fig10cResult tracks 12 months of deployment growth: file count climbs
// until manual compaction lands (month 4) and drops again when
// auto-compaction rolls out (month 9), despite the deployment growing.
type Fig10cResult struct {
	Months []MonthStat
}

// ID implements Result.
func (Fig10cResult) ID() string { return "fig10c" }

// Title implements Result.
func (Fig10cResult) Title() string {
	return "Figure 10c: deployment statistics (size vs file count over 12 months)"
}

// Render implements Result.
func (r Fig10cResult) Render() string {
	var rows [][]string
	for _, m := range r.Months {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Month), m.Regime,
			fmt.Sprintf("%d", m.Tables),
			fmt.Sprintf("%d", m.Files),
		})
	}
	return metrics.RenderTable([]string{"Month", "Regime", "Tables", "Files"}, rows)
}

// runFleetTimeline ages a fleet through the paper's three regimes and
// returns monthly stats; shared by Fig 10c and Fig 11b.
func runFleetTimeline(seed int64, quick bool, months int) (*Fig10cResult, []MonthStat, error) {
	clock := sim.NewClock()
	f := fleet.New(fleetConfig(seed, quick), clock)
	model := fleet.DefaultModel(512 * storage.MB)
	runner := fleet.Runner{Fleet: f, Model: model}

	res := &Fig10cResult{}
	var manualSet []*fleet.Table
	var svc *core.Service
	var openPerMonth []MonthStat
	prevOpens := int64(0)

	for m := 1; m <= months; m++ {
		regime := "none"
		switch {
		case m >= 9:
			regime = "auto"
		case m >= 4:
			regime = "manual"
		}
		if regime == "manual" && manualSet == nil {
			manualSet = f.MostFragmented(100)
		}
		if regime == "auto" && svc == nil {
			s, err := f.Service(core.BudgetSelector{BudgetGBHr: 226 * 1024}, model)
			if err != nil {
				return nil, nil, err
			}
			svc = s
		}
		for d := 0; d < 30; d++ {
			f.AdvanceDay()
			f.RunDailyScans()
			switch regime {
			case "manual":
				runner.CompactTables(manualSet)
			case "auto":
				if _, err := svc.RunOnce(); err != nil {
					return nil, nil, err
				}
			}
		}
		stat := MonthStat{
			Month:  m,
			Tables: f.TableCount(),
			Files:  f.TotalFiles(),
			Regime: regime,
		}
		res.Months = append(res.Months, stat)
		opens := f.OpenCalls()
		openPerMonth = append(openPerMonth, MonthStat{
			Month: m, Tables: f.TableCount(), Regime: regime,
			OpenCalls: opens - prevOpens,
		})
		prevOpens = opens
	}
	return res, openPerMonth, nil
}

// RunFig10c runs the 12-month timeline.
func RunFig10c(seed int64, quick bool) (Result, error) {
	res, _, err := runFleetTimeline(seed, quick, 12)
	return *res, err
}

func init() {
	register(Spec{ExpID: "fig10c", Title: Fig10cResult{}.Title(), Run: RunFig10c})
}

// --- Figure 11a: workload metrics sawtooth ---

// DayStat is one day of the scan-heavy workload under daily AutoComp.
type DayStat struct {
	Day          int
	FilesScanned int64
	QueryTime    float64
	QueryCost    float64
	FilesReduced int64
}

// Fig11aResult is the 30-day series of Figure 11a: files scanned, query
// time, and query cost track compaction activity, with a sawtooth as
// unselected tables regrow.
type Fig11aResult struct {
	Days []DayStat
}

// ID implements Result.
func (Fig11aResult) ID() string { return "fig11a" }

// Title implements Result.
func (Fig11aResult) Title() string {
	return "Figure 11a: key workload metrics over 30 days (smoothed, normalized)"
}

// Render implements Result.
func (r Fig11aResult) Render() string {
	// Normalize + EMA-smooth each series like the paper's plot.
	mk := func(get func(DayStat) float64, name string) *metrics.TimeSeries {
		s := metrics.NewTimeSeries(name)
		for _, d := range r.Days {
			s.Add(time.Duration(d.Day)*24*time.Hour, get(d))
		}
		return s.SmoothedEMA(0.4).Normalized()
	}
	scanned := mk(func(d DayStat) float64 { return float64(d.FilesScanned) }, "scanned")
	qtime := mk(func(d DayStat) float64 { return d.QueryTime }, "time")
	qcost := mk(func(d DayStat) float64 { return d.QueryCost }, "cost")
	reduced := mk(func(d DayStat) float64 { return float64(d.FilesReduced) }, "reduced")
	var rows [][]string
	for i := range r.Days {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Days[i].Day),
			fmt.Sprintf("%.3f", scanned.Points[i].V),
			fmt.Sprintf("%.3f", qtime.Points[i].V),
			fmt.Sprintf("%.3f", qcost.Points[i].V),
			fmt.Sprintf("%.3f", reduced.Points[i].V),
		})
	}
	return metrics.RenderTable(
		[]string{"Day", "Files scanned", "Query time", "Query cost", "Files reduced"}, rows)
}

// RunFig11a runs 30 days of daily scans plus daily top-k AutoComp.
func RunFig11a(seed int64, quick bool) (Result, error) {
	clock := sim.NewClock()
	f := fleet.New(fleetConfig(seed, quick), clock)
	model := fleet.DefaultModel(512 * storage.MB)
	// k is deliberately smaller than the fragmented population so
	// unselected tables regrow between selections (the sawtooth).
	svc, err := f.Service(core.TopK{K: 40}, model)
	if err != nil {
		return nil, err
	}
	res := Fig11aResult{}
	for d := 1; d <= 30; d++ {
		f.AdvanceDay()
		scan := f.RunDailyScans()
		rep, err := svc.RunOnce()
		if err != nil {
			return nil, err
		}
		res.Days = append(res.Days, DayStat{
			Day:          d,
			FilesScanned: scan.FilesScanned,
			QueryTime:    scan.QueryTime.Seconds(),
			QueryCost:    scan.QueryCost,
			FilesReduced: int64(rep.FilesReduced),
		})
	}
	return res, nil
}

func init() {
	register(Spec{ExpID: "fig11a", Title: Fig11aResult{}.Title(), Run: RunFig11a})
}

// --- Figure 11b: HDFS open() calls ---

// Fig11bResult tracks monthly HDFS open() volume across the compaction
// regimes: manual (month 4) and auto (month 9) cut file-open traffic
// even as the deployment grows.
type Fig11bResult struct {
	Months []MonthStat
}

// ID implements Result.
func (Fig11bResult) ID() string { return "fig11b" }

// Title implements Result.
func (Fig11bResult) Title() string {
	return "Figure 11b: HDFS filesystem open() operations over 14 months"
}

// Render implements Result.
func (r Fig11bResult) Render() string {
	var rows [][]string
	for _, m := range r.Months {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Month), m.Regime,
			fmt.Sprintf("%d", m.Tables),
			fmt.Sprintf("%d", m.OpenCalls),
		})
	}
	return metrics.RenderTable([]string{"Month", "Regime", "Tables", "open() calls"}, rows)
}

// RunFig11b runs the 14-month timeline and projects open() deltas.
func RunFig11b(seed int64, quick bool) (Result, error) {
	_, opens, err := runFleetTimeline(seed, quick, 14)
	if err != nil {
		return nil, err
	}
	return Fig11bResult{Months: opens}, nil
}

func init() {
	register(Spec{ExpID: "fig11b", Title: Fig11bResult{}.Title(), Run: RunFig11b})
}
