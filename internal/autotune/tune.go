package autotune

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autocomp/internal/fleet"
	"autocomp/internal/policy"
	"autocomp/internal/scenario"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
	"autocomp/internal/telemetry"
	"autocomp/internal/tuner"
)

// Config declares one tune run.
type Config struct {
	// Space is the search space (required).
	Space *Space
	// Base is the spec the search perturbs and the baseline every trial
	// is scored against (nil = policy.DefaultSpec()).
	Base *policy.Spec
	// Scenarios are the workloads every trial replays (required; names
	// must be unique — they derive the per-scenario eval seeds).
	Scenarios []*scenario.Spec
	// Optimizer is "cfo" (default), "random", or "grid".
	Optimizer string
	// Budget is the trial count (default 16).
	Budget int
	// Seed drives the whole tune: the search stream and every trial's
	// scenario seeds derive from it via sim.Child.
	Seed int64
	// Workers bounds the evaluation pool (default GOMAXPROCS). The
	// worker count never changes any result byte: CFO parallelizes
	// across scenarios within a trial, random/grid across whole trials,
	// and results merge in trial order either way.
	Workers int
	// Weights overrides the space's composite weighting.
	Weights Weights
	// TrialLog, when set, receives one JSON line per trial, in trial
	// order (the deterministic artifact the determinism battery pins).
	TrialLog io.Writer
	// OnTrial, when set, observes each trial record as it is merged, in
	// trial order.
	OnTrial func(TrialRecord)
}

// ScenarioScore is one scenario's contribution to a trial.
type ScenarioScore struct {
	Scenario string `json:"scenario"`
	// Seed is the eval seed derived from the tune seed — identical for
	// every trial, so trials compare against the baseline under common
	// random numbers.
	Seed  int64 `json:"seed"`
	Score Score `json:"score"`
	// Composite is this scenario's weighted ratio against the baseline
	// (1.0 = exactly the baseline).
	Composite float64 `json:"composite"`
}

// TrialRecord is one line of the JSONL trial log.
type TrialRecord struct {
	// Trial numbers trials from 1 in evaluation order.
	Trial int `json:"trial"`
	// Params is the quantized parameter vector the trial actually ran
	// (the raw optimizer coordinates after clamping, rounding, and
	// weight renormalization).
	Params map[string]float64 `json:"params"`
	// Invalid carries the validation error of a trial whose decoded
	// spec failed policy compilation or scenario replay; such trials
	// score as failures and carry no scenario scores.
	Invalid   string          `json:"invalid,omitempty"`
	Scenarios []ScenarioScore `json:"scenarios,omitempty"`
	// Composite is the trial's score (mean over scenarios; lower is
	// better, 1.0 = the baseline). Zero when Invalid is set.
	Composite float64 `json:"composite,omitempty"`
	// Best is the best valid composite seen up to and including this
	// trial (zero until the first valid trial).
	Best float64 `json:"best,omitempty"`
}

// ScenarioSeed names one scenario of the run and its derived eval seed.
type ScenarioSeed struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
}

// Report is the provenance record of a tune run.
type Report struct {
	Space     string         `json:"space,omitempty"`
	Base      string         `json:"base"`
	Optimizer string         `json:"optimizer"`
	Seed      int64          `json:"seed"`
	Budget    int            `json:"budget"`
	Trials    int            `json:"trials"`
	Invalid   int            `json:"invalid"`
	Weights   Weights        `json:"weights"`
	Scenarios []ScenarioSeed `json:"scenarios"`
	// Baseline is the base spec's raw score per scenario (composite 1.0
	// by construction).
	Baseline []ScenarioScore `json:"baseline"`
	// BestTrial is the 1-based winner trial; BestComposite its score.
	BestTrial     int     `json:"best_trial"`
	BestComposite float64 `json:"best_composite"`
	// ImprovementPct is how far the winner beats the baseline composite
	// (positive = strictly better than the base spec).
	ImprovementPct float64 `json:"improvement_pct"`
	// Trajectory is the best-so-far composite after each trial — the
	// y-axis of the paper's Figure 9 convergence plots (zero entries
	// precede the first valid trial).
	Trajectory []float64 `json:"trajectory"`
	// WinnerParams is the winner's quantized parameter vector and
	// WinnerDiff the field-level spec diff base → winner.
	WinnerParams map[string]float64 `json:"winner_params"`
	WinnerDiff   []string           `json:"winner_diff"`
}

// Result is a completed tune run.
type Result struct {
	// Winner is the best trial's spec, compile-clean, named with tune
	// provenance.
	Winner  *policy.Spec
	Report  Report
	Records []TrialRecord
}

// evalEnv is the compile environment trial specs validate against — the
// same modeling constants the scenario engine compiles with.
func evalEnv() policy.Env {
	model := fleet.DefaultModel(512 * storage.MB)
	return policy.Env{
		TargetFileSize:      model.TargetFileSize,
		ExecutorMemoryGB:    model.ExecutorMemoryGB,
		RewriteBytesPerHour: model.RewriteBytesPerHour,
	}
}

// runPool executes fn(0..n-1) over a bounded worker pool, mirroring the
// decide-shard engine's work-stealing pattern. Each index writes only
// its own slot of the caller's result slice, so the merge is
// deterministic regardless of completion order.
func runPool(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evalOne replays one scenario under the given policy on a private
// tracer and returns the trace score. The scenario runs with the
// derived eval seed, the trial policy replacing its base policy, and
// any scheduled reloads dropped — a trial's spec is the policy for the
// whole run, or the attribution of its score would be muddy.
func evalOne(sc *scenario.Spec, spec *policy.Spec, seed int64) (Score, error) {
	started := time.Now()
	cp := *sc
	cp.Seed = seed
	cp.Policy = spec
	cp.Reloads = nil
	eng, err := scenario.NewEngineOpts(&cp, scenario.EngineOptions{Tracer: telemetry.NewTracer(16)})
	if err != nil {
		return Score{}, err
	}
	tr, err := eng.Run()
	if err != nil {
		return Score{}, err
	}
	mEvals.With(sc.Name).Inc()
	mEvalSeconds.Observe(time.Since(started).Seconds())
	return ScoreTrace(tr), nil
}

// Run executes one closed tuning loop: encode the base spec as the
// warm start, let the optimizer propose parameter vectors, decode each
// into a candidate spec, validate it through policy compilation, replay
// every scenario on virtual time, score the canonical traces against
// the baseline, and return the best trial's spec with full provenance.
func Run(cfg Config) (*Result, error) {
	base := cfg.Base
	if base == nil {
		base = policy.DefaultSpec()
	}
	if err := cfg.Space.Validate(base); err != nil {
		return nil, err
	}
	if len(cfg.Scenarios) == 0 {
		return nil, errors.New("autotune: no scenarios")
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 16
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	weights := cfg.Weights
	if len(weights) == 0 {
		weights = cfg.Space.Objective
	}
	if err := weights.validate(); err != nil {
		return nil, err
	}
	weights = weights.normalized()
	env := evalEnv()
	if err := policy.Validate(base, env); err != nil {
		return nil, fmt.Errorf("autotune: base spec: %w", err)
	}

	// Derive one eval seed per scenario from the tune seed. The seeds
	// are label-derived (not drawn), so the scenario set's order does
	// not matter and every trial replays the identical workload — the
	// common-random-numbers pairing that makes trial-vs-baseline deltas
	// meaningful at these budgets.
	seeds := make([]int64, len(cfg.Scenarios))
	seen := map[string]bool{}
	for i, sc := range cfg.Scenarios {
		if sc == nil || sc.Name == "" {
			return nil, fmt.Errorf("autotune: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("autotune: duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		seeds[i] = sim.ChildSeed(cfg.Seed, "autotune/eval/"+sc.Name)
	}
	mWorkers.Set(float64(workers))

	// Baseline pass: the base spec on every scenario, in parallel. Every
	// trial composite is a ratio against these scores.
	baseline := make([]ScenarioScore, len(cfg.Scenarios))
	baseErrs := make([]error, len(cfg.Scenarios))
	runPool(workers, len(cfg.Scenarios), func(i int) {
		score, err := evalOne(cfg.Scenarios[i], base, seeds[i])
		baseline[i] = ScenarioScore{Scenario: cfg.Scenarios[i].Name, Seed: seeds[i], Score: score, Composite: 1}
		baseErrs[i] = err
	})
	if err := errors.Join(baseErrs...); err != nil {
		mTunes.With("error").Inc()
		return nil, fmt.Errorf("autotune: baseline: %w", err)
	}

	// evalTrial decodes, validates, and replays one parameter vector.
	// Invalid points come back as failed records — a tune survives any
	// corner of the space the optimizer wanders into.
	evalTrial := func(n int, params map[string]float64) TrialRecord {
		rec := TrialRecord{Trial: n, Params: params}
		spec, err := cfg.Space.Decode(base, params)
		if err == nil {
			// Record the quantized vector the trial actually ran.
			if q, qerr := cfg.Space.Encode(spec); qerr == nil {
				rec.Params = q
			}
			err = policy.Validate(spec, env)
		}
		if err == nil {
			scores := make([]ScenarioScore, len(cfg.Scenarios))
			evalErrs := make([]error, len(cfg.Scenarios))
			runPool(workers, len(cfg.Scenarios), func(i int) {
				score, serr := evalOne(cfg.Scenarios[i], spec, seeds[i])
				scores[i] = ScenarioScore{
					Scenario:  cfg.Scenarios[i].Name,
					Seed:      seeds[i],
					Score:     score,
					Composite: Composite(score, baseline[i].Score, weights),
				}
				evalErrs[i] = serr
			})
			if err = errors.Join(evalErrs...); err == nil {
				total := 0.0
				for _, s := range scores {
					total += s.Composite
				}
				rec.Scenarios = scores
				rec.Composite = total / float64(len(scores))
			}
		}
		if err != nil {
			rec.Invalid = err.Error()
			rec.Scenarios = nil
			rec.Composite = 0
			mTrials.With("invalid").Inc()
			return rec
		}
		mTrials.With("ok").Inc()
		return rec
	}

	// emit merges records strictly in trial order: best-so-far, the
	// JSONL log, and the streaming hook all see the same sequence at
	// any worker count.
	var records []TrialRecord
	best := 0.0
	var logErr error
	emit := func(rec TrialRecord) {
		if rec.Invalid == "" && (best == 0 || rec.Composite < best) {
			best = rec.Composite
		}
		rec.Best = best
		records = append(records, rec)
		if cfg.TrialLog != nil && logErr == nil {
			b, err := json.Marshal(rec)
			if err == nil {
				_, err = cfg.TrialLog.Write(append(b, '\n'))
			}
			logErr = err
		}
		if cfg.OnTrial != nil {
			cfg.OnTrial(rec)
		}
	}

	params := cfg.Space.Params()
	start, err := cfg.Space.Encode(base)
	if err != nil {
		return nil, err
	}
	searchSeed := sim.ChildSeed(cfg.Seed, "autotune/search")
	optName := cfg.Optimizer
	if optName == "" {
		optName = "cfo"
	}
	switch optName {
	case "cfo":
		// CFO's proposals depend on earlier scores, so trials run
		// sequentially and the pool parallelizes the scenario replays
		// inside each trial. The search warm-starts from the base spec:
		// trial 1 scores 1.0 by construction and the loop hill-climbs
		// away from it.
		n := 0
		opt := tuner.CFO{Params: params, Seed: searchSeed, Start: start}
		opt.Optimize(func(p map[string]float64) float64 {
			n++
			rec := evalTrial(n, p)
			emit(rec)
			if rec.Invalid != "" {
				return math.Inf(1)
			}
			return rec.Composite
		}, budget)
	case "random", "grid":
		// Random and grid proposals never read scores, so the whole
		// plan materializes up front (via a probe objective) and trials
		// evaluate in parallel; the merge replays them in trial order.
		var opt tuner.Optimizer = tuner.RandomSearch{Params: params, Seed: searchSeed}
		if optName == "grid" {
			opt = tuner.GridSearch{Params: params}
		}
		var plan []map[string]float64
		opt.Optimize(func(p map[string]float64) float64 {
			cp := make(map[string]float64, len(p))
			for k, v := range p {
				cp[k] = v
			}
			plan = append(plan, cp)
			return 0
		}, budget)
		out := make([]TrialRecord, len(plan))
		runPool(workers, len(plan), func(i int) {
			out[i] = evalTrial(i+1, plan[i])
		})
		for _, rec := range out {
			emit(rec)
		}
	default:
		return nil, fmt.Errorf("autotune: unknown optimizer %q (have: cfo, random, grid)", cfg.Optimizer)
	}
	if logErr != nil {
		mTunes.With("error").Inc()
		return nil, fmt.Errorf("autotune: trial log: %w", logErr)
	}

	rep := Report{
		Space:     cfg.Space.Name,
		Base:      specName(base),
		Optimizer: optName,
		Seed:      cfg.Seed,
		Budget:    budget,
		Trials:    len(records),
		Weights:   weights,
		Baseline:  baseline,
	}
	for i, sc := range cfg.Scenarios {
		rep.Scenarios = append(rep.Scenarios, ScenarioSeed{Name: sc.Name, Seed: seeds[i]})
	}
	bestIdx := -1
	for i, rec := range records {
		rep.Trajectory = append(rep.Trajectory, rec.Best)
		if rec.Invalid != "" {
			rep.Invalid++
			continue
		}
		if bestIdx < 0 || rec.Composite < records[bestIdx].Composite {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		mTunes.With("error").Inc()
		return nil, errors.New("autotune: no valid trials (every decoded spec failed validation)")
	}
	bestRec := records[bestIdx]
	rep.BestTrial = bestRec.Trial
	rep.BestComposite = bestRec.Composite
	rep.ImprovementPct = 100 * (1 - bestRec.Composite)
	rep.WinnerParams = bestRec.Params

	winner, err := cfg.Space.Decode(base, bestRec.Params)
	if err != nil {
		return nil, err
	}
	rep.WinnerDiff = policy.Diff(base, winner)
	winner.Name = specName(base) + "-tuned"
	winner.Description = fmt.Sprintf("tuned from %q: %s over %d trials (tune seed %d), composite %.4f vs baseline 1.0",
		specName(base), optName, rep.Trials, cfg.Seed, rep.BestComposite)
	mBestComposite.Set(rep.BestComposite)
	mTunes.With("ok").Inc()
	return &Result{Winner: winner, Report: rep, Records: records}, nil
}

// specName mirrors the scenario plane's display naming.
func specName(s *policy.Spec) string {
	if s == nil || s.Name == "" {
		return "(unnamed)"
	}
	return s.Name
}

// CheckTrialLog validates a JSONL trial log's schema and internal
// consistency: contiguous 1-based trial numbers, parameters on every
// line, positive composites on valid trials, and a monotonically
// non-increasing best-so-far. CI runs this on the smoke tune's log so a
// malformed or truncated log fails the build.
func CheckTrialLog(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	prevBest := math.Inf(1)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("line %d: malformed record: %v", n, err)
		}
		if rec.Trial != n {
			return fmt.Errorf("line %d: trial number %d (want contiguous from 1)", n, rec.Trial)
		}
		if len(rec.Params) == 0 {
			return fmt.Errorf("line %d: no params", n)
		}
		if rec.Invalid == "" {
			if rec.Composite <= 0 {
				return fmt.Errorf("line %d: valid trial with composite %v", n, rec.Composite)
			}
			if len(rec.Scenarios) == 0 {
				return fmt.Errorf("line %d: valid trial with no scenario scores", n)
			}
			if rec.Best <= 0 || rec.Best > rec.Composite || rec.Best > prevBest {
				return fmt.Errorf("line %d: best %v inconsistent (composite %v, prev best %v)",
					n, rec.Best, rec.Composite, prevBest)
			}
			prevBest = rec.Best
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return errors.New("trial log is empty")
	}
	return nil
}
