package autotune

import (
	"autocomp/internal/telemetry"
)

// Runtime metrics of the tuning harness. Publication is passive: the
// harness records trial outcomes and evaluation walls after each
// result is merged, never influencing a trial seed, a proposal, or the
// merge order — the determinism battery runs with instrumentation on.
var (
	mTunes = telemetry.Default().CounterVec(
		"autocomp_autotune_tunes_total",
		"Completed tune runs, by outcome (ok, error).",
		"outcome")
	mTrials = telemetry.Default().CounterVec(
		"autocomp_autotune_trials_total",
		"Trials evaluated across all tune runs, by outcome (ok, invalid).",
		"outcome")
	mEvals = telemetry.Default().CounterVec(
		"autocomp_autotune_evals_total",
		"Scenario replays evaluated across all tune runs, by scenario.",
		"scenario")
	mEvalSeconds = telemetry.Default().Histogram(
		"autocomp_autotune_eval_seconds",
		"Wall time of one scenario replay inside a trial.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120})
	mBestComposite = telemetry.Default().Gauge(
		"autocomp_autotune_best_composite",
		"Best composite score of the most recently completed tune run (1.0 = the baseline spec).")
	mWorkers = telemetry.Default().Gauge(
		"autocomp_autotune_workers",
		"Worker-pool size of the most recently started tune run.")
)
