package autotune

import (
	"bytes"
	"strings"
	"testing"

	"autocomp/internal/policy"
	"autocomp/internal/scenario"
)

// microScenario is a tiny inline workload for harness tests.
func microScenario(name string, tables int) *scenario.Spec {
	return &scenario.Spec{
		Name: name,
		Seed: 7,
		Days: 3,
		Fleet: scenario.FleetSpec{
			InitialTables: tables,
			Databases:     3,
		},
		Faults: &scenario.FaultSpec{WriterCommitsPerHour: 40},
	}
}

// microSpace tunes execution width and budget on the default spec.
func microSpace() *Space {
	return &Space{
		Name: "micro",
		Dimensions: []Dimension{
			{Field: "selector.budget_gbhr", Min: 8, Max: 65536, Log: true},
			{Field: "execution.workers", Min: 1, Max: 32},
		},
	}
}

func runTune(t *testing.T, cfg Config) (*Result, []byte) {
	t.Helper()
	var log bytes.Buffer
	cfg.TrialLog = &log
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, log.Bytes()
}

// TestTuneDeterministicAcrossWorkers pins the acceptance criterion:
// the same tune seed, space, scenario set, and budget produce
// byte-identical trial logs and winner specs at any worker count, for
// both the sequential (CFO) and the batch-parallel (random) paths.
func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-optimizer worker sweep; the CI quick job covers the loop via scripts/smoke_tune.sh")
	}
	scenarios := []*scenario.Spec{microScenario("micro-a", 40), microScenario("micro-b", 60)}
	for _, optimizer := range []string{"cfo", "random"} {
		var logs [][]byte
		var winners [][]byte
		for _, workers := range []int{1, 4, 13} {
			res, log := runTune(t, Config{
				Space:     microSpace(),
				Scenarios: scenarios,
				Optimizer: optimizer,
				Budget:    6,
				Seed:      3,
				Workers:   workers,
			})
			w, err := res.Winner.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			logs = append(logs, log)
			winners = append(winners, w)
		}
		for i := 1; i < len(logs); i++ {
			if !bytes.Equal(logs[0], logs[i]) {
				t.Fatalf("%s: trial log differs between worker counts:\n%s\nvs\n%s", optimizer, logs[0], logs[i])
			}
			if !bytes.Equal(winners[0], winners[i]) {
				t.Fatalf("%s: winner spec differs between worker counts", optimizer)
			}
		}
		// And across repeat runs at the same worker count (seed stability).
		res, log := runTune(t, Config{
			Space: microSpace(), Scenarios: scenarios, Optimizer: optimizer, Budget: 6, Seed: 3, Workers: 4,
		})
		if !bytes.Equal(logs[0], log) {
			t.Fatalf("%s: repeat run differs", optimizer)
		}
		if err := CheckTrialLog(bytes.NewReader(log)); err != nil {
			t.Fatalf("%s: trial log fails its own schema check: %v", optimizer, err)
		}
		if res.Report.Trials != 6 {
			t.Fatalf("%s: trials = %d, want 6", optimizer, res.Report.Trials)
		}
	}
}

// TestTuneWarmStartsFromBase pins the closed loop's anchor: CFO's first
// trial is the base spec itself, so its composite is exactly 1.0 and
// the winner can never be worse than the baseline.
func TestTuneWarmStartsFromBase(t *testing.T) {
	res, _ := runTune(t, Config{
		Space:     microSpace(),
		Scenarios: []*scenario.Spec{microScenario("micro", 40)},
		Budget:    4,
		Seed:      1,
	})
	first := res.Records[0]
	if first.Invalid != "" {
		t.Fatalf("warm-start trial invalid: %s", first.Invalid)
	}
	if first.Composite != 1.0 {
		t.Fatalf("warm-start composite = %v, want exactly 1.0", first.Composite)
	}
	if res.Report.BestComposite > 1.0 {
		t.Fatalf("best composite %v worse than the baseline", res.Report.BestComposite)
	}
	if first.Params["execution.workers"] != 8 || first.Params["selector.budget_gbhr"] != 50*1024 {
		t.Fatalf("warm-start params = %v, want the base spec's", first.Params)
	}
}

// TestTunedBeatsDefault is the acceptance criterion's closed-loop
// proof on a shipped scenario: a micro-budget tune of the shipped
// space strictly improves the composite score over DefaultSpec on
// examples/scenarios/tuning-micro.json, and the provenance report
// carries a consistent trajectory.
func TestTunedBeatsDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget tune; the CI quick job covers it via scripts/smoke_tune.sh")
	}
	sc, err := scenario.LoadFile("../../examples/scenarios/tuning-micro.json")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := LoadSpaceFile("../../examples/tuning/space.json")
	if err != nil {
		t.Fatal(err)
	}
	res, log := runTune(t, Config{
		Space:     sp,
		Scenarios: []*scenario.Spec{sc},
		Budget:    8,
		Seed:      1,
	})
	rep := res.Report
	if rep.BestComposite >= 1.0 {
		t.Fatalf("tuned composite %v does not strictly beat the default's 1.0", rep.BestComposite)
	}
	if rep.ImprovementPct <= 0 {
		t.Fatalf("improvement %v%%, want > 0", rep.ImprovementPct)
	}
	// The winner compiles cleanly against the evaluation environment.
	if err := policy.Validate(res.Winner, evalEnv()); err != nil {
		t.Fatalf("winner does not compile: %v", err)
	}
	// The trajectory is the best-so-far series: monotone non-increasing
	// once valid, ending at the best composite.
	if len(rep.Trajectory) != rep.Trials {
		t.Fatalf("trajectory has %d points for %d trials", len(rep.Trajectory), rep.Trials)
	}
	last := rep.Trajectory[0]
	for i, v := range rep.Trajectory {
		if v > last {
			t.Fatalf("trajectory regressed at %d: %v -> %v", i, last, v)
		}
		last = v
	}
	if last != rep.BestComposite {
		t.Fatalf("trajectory ends at %v, best is %v", last, rep.BestComposite)
	}
	if len(rep.WinnerDiff) == 0 {
		t.Fatal("winner diff empty: the winner is the base spec")
	}
	if err := CheckTrialLog(bytes.NewReader(log)); err != nil {
		t.Fatal(err)
	}
	if res.Winner.Name != "default-tuned" {
		t.Fatalf("winner name = %q", res.Winner.Name)
	}
}

// TestInvalidPointsScoreAsFailures drives the optimizer into a corner
// of the space that does not compile (an unregistered scheduler) and
// asserts the tune survives: the bad trial records as invalid, the
// winner comes from the valid corner.
func TestInvalidPointsScoreAsFailures(t *testing.T) {
	sp := &Space{Dimensions: []Dimension{
		{Field: "scheduler", Choices: []string{"sequential", "no-such-scheduler"}},
	}}
	// The 5-point grid over [0,2) lands on raw 0, 0.5, 1.0 — the third
	// point is the first to floor to the invalid choice index 1.
	res, log := runTune(t, Config{
		Space:     sp,
		Scenarios: []*scenario.Spec{microScenario("micro", 40)},
		Optimizer: "grid",
		Budget:    3,
		Seed:      1,
	})
	if res.Report.Trials != 3 {
		t.Fatalf("trials = %d", res.Report.Trials)
	}
	if res.Report.Invalid != 1 {
		t.Fatalf("invalid = %d, want 1", res.Report.Invalid)
	}
	var invalid *TrialRecord
	for i := range res.Records {
		if res.Records[i].Invalid != "" {
			invalid = &res.Records[i]
		}
	}
	if invalid == nil {
		t.Fatal("no invalid record")
	}
	if !strings.Contains(invalid.Invalid, "no-such-scheduler") {
		t.Fatalf("invalid reason %q does not name the bad component", invalid.Invalid)
	}
	if invalid.Composite != 0 || len(invalid.Scenarios) != 0 {
		t.Fatal("invalid trial carries scores")
	}
	if res.Winner.Scheduler != nil && res.Winner.Scheduler.Name != "sequential" {
		t.Fatalf("winner picked the invalid corner: %+v", res.Winner.Scheduler)
	}
	if err := CheckTrialLog(bytes.NewReader(log)); err != nil {
		t.Fatal(err)
	}
}

// TestTuneFailsWhenNothingValidates covers the all-invalid corner.
func TestTuneFailsWhenNothingValidates(t *testing.T) {
	// Three choices but a budget of 2: the grid never reaches the only
	// valid generator at index 2, so every trial fails validation.
	sp := &Space{Dimensions: []Dimension{
		{Field: "generator", Choices: []string{"bogus-a", "bogus-b", "table-scope"}},
	}}
	_, err := Run(Config{
		Space:     sp,
		Base:      policy.DefaultSpec(),
		Scenarios: []*scenario.Spec{microScenario("micro", 40)},
		Optimizer: "grid",
		Budget:    2,
		Seed:      1,
	})
	if err == nil || !strings.Contains(err.Error(), "no valid trials") {
		t.Fatalf("err = %v, want no-valid-trials", err)
	}
}

func TestCheckTrialLogRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"malformed":      "not json\n",
		"gap in numbers": `{"trial":2,"params":{"x":1},"invalid":"nope"}` + "\n",
		"no params":      `{"trial":1,"invalid":"nope"}` + "\n",
		"zero composite": `{"trial":1,"params":{"x":1},"scenarios":[{"scenario":"s","seed":1,"score":{},"composite":0}]}` + "\n",
		"best regressed": `{"trial":1,"params":{"x":1},"scenarios":[{"scenario":"s","seed":1,"score":{},"composite":1}],"composite":1,"best":1}` + "\n" +
			`{"trial":2,"params":{"x":1},"scenarios":[{"scenario":"s","seed":1,"score":{},"composite":2}],"composite":2,"best":2}` + "\n",
	}
	for name, log := range cases {
		if err := CheckTrialLog(strings.NewReader(log)); err == nil {
			t.Errorf("%s: passed", name)
		}
	}
}
