package autotune

import (
	"bytes"
	"math"
	"testing"

	"autocomp/internal/policy"
	"autocomp/internal/sim"
)

// numericPool lists numeric catalog fields valid on DefaultSpec, with
// the tightest legal lower bound a random range may use.
var numericPool = []struct {
	field  string
	floor  float64
	hi     float64
	isInt  bool
	logOK  bool
	weight bool
}{
	{"selector.budget_gbhr", 1, 100000, false, true, false},
	{"execution.workers", 1, 64, true, false, false},
	{"execution.shards", 1, 32, true, false, false},
	{"execution.shard_budget_gbhr", 0, 5000, false, false, false},
	{"maintenance.retain_snapshots", 1, 50, true, false, false},
	{"maintenance.checkpoint_every_versions", 1, 500, true, false, false},
	{"maintenance.min_manifest_surplus", 1, 64, true, false, false},
	{"trigger.every_commits", 1, 100, true, false, false},
	{"objectives.file_count_reduction", 0, 1, false, false, true},
	{"objectives.metadata_reduction", 0, 1, false, false, true},
	{"objectives.compute_cost_gbhr", 0, 1, false, false, true},
}

// randomSpace builds a valid space over a random subset of the catalog.
func randomSpace(rng *sim.RNG) *Space {
	sp := &Space{Name: "prop"}
	perm := rng.Perm(len(numericPool))
	n := 1 + rng.Intn(len(numericPool))
	for _, idx := range perm[:n] {
		f := numericPool[idx]
		span := f.hi - f.floor
		lo := f.floor + rng.Float64()*span*0.4
		hi := lo + 0.1 + rng.Float64()*(f.hi-lo)
		d := Dimension{Field: f.field, Min: lo, Max: hi}
		if f.isInt {
			d.Min, d.Max = math.Ceil(lo), math.Ceil(hi)+1
		}
		if f.logOK && d.Min > 0 && rng.Bernoulli(0.5) {
			d.Log = true
		}
		sp.Dimensions = append(sp.Dimensions, d)
	}
	if rng.Bernoulli(0.5) {
		sp.Dimensions = append(sp.Dimensions, Dimension{
			Field:   "generator",
			Choices: []string{"table-scope", "partition-scope", "hybrid-scope"},
		})
	}
	if rng.Bernoulli(0.5) {
		sp.Dimensions = append(sp.Dimensions, Dimension{
			Field:   "scheduler",
			Choices: []string{"sequential", "tables-parallel"},
		})
	}
	return sp
}

// TestSpaceRoundTripProperty drives random spaces with random raw
// vectors (including out-of-range coordinates, to exercise clamping)
// and pins the mapper's algebra: Decode is total on the box, Encode
// inverts it (decode∘encode = id on decoded specs, encode∘decode = id
// on quantized vectors), and every encoded coordinate respects its
// dimension's bounds.
func TestSpaceRoundTripProperty(t *testing.T) {
	rng := sim.NewRNG(42)
	base := policy.DefaultSpec()
	for iter := 0; iter < 300; iter++ {
		sp := randomSpace(rng)
		if err := sp.Validate(base); err != nil {
			t.Fatalf("iter %d: random space invalid: %v\nspace: %+v", iter, err, sp)
		}
		raw := map[string]float64{}
		for _, d := range sp.Dimensions {
			lo, hi := d.Min, d.Max
			if len(d.Choices) > 0 {
				lo, hi = 0, float64(len(d.Choices))
			}
			v := lo + rng.Float64()*(hi-lo)
			if rng.Bernoulli(0.2) {
				// Out-of-range coordinate: quantization must clamp.
				v = lo - 1 + rng.Float64()*(hi-lo+2)
			}
			raw[d.Field] = v
		}
		spec1, err := sp.Decode(base, raw)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		v1, err := sp.Encode(spec1)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}
		spec2, err := sp.Decode(base, v1)
		if err != nil {
			t.Fatalf("iter %d: re-decode: %v", iter, err)
		}
		b1, _ := spec1.Marshal()
		b2, _ := spec2.Marshal()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("iter %d: decode∘encode not identity:\nspace %+v\nraw %v\nquantized %v\nspec1:\n%s\nspec2:\n%s",
				iter, sp, raw, v1, b1, b2)
		}
		v2, err := sp.Encode(spec2)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", iter, err)
		}
		for _, d := range sp.Dimensions {
			a, b := v1[d.Field], v2[d.Field]
			if a != b {
				t.Fatalf("iter %d: %s: encode∘decode not identity on quantized vector: %v vs %v", iter, d.Field, a, b)
			}
			def, _ := lookupField(d.Field)
			switch {
			case def.kind == kindChoice:
				if a != math.Trunc(a) || a < 0 || a >= float64(len(d.Choices)) {
					t.Fatalf("iter %d: %s: choice index %v outside [0,%d)", iter, d.Field, a, len(d.Choices))
				}
			case def.weight:
				if a < 0 {
					t.Fatalf("iter %d: %s: negative weight %v", iter, d.Field, a)
				}
			default:
				if a < d.Min || a > d.Max {
					t.Fatalf("iter %d: %s: %v outside [%v,%v]", iter, d.Field, a, d.Min, d.Max)
				}
				if def.kind == kindInt && a != math.Trunc(a) {
					t.Fatalf("iter %d: %s: int dim decoded to %v", iter, d.Field, a)
				}
			}
		}
		// Weight dims must leave a valid simplex behind: the compile
		// gate is the real assertion, run it on a sample of iterations.
		if iter%25 == 0 {
			if err := policy.Validate(spec1, evalEnv()); err != nil {
				t.Fatalf("iter %d: decoded spec does not compile: %v\n%s", iter, err, b1)
			}
		}
	}
}

func TestSpaceValidateRejects(t *testing.T) {
	base := policy.DefaultSpec()
	cases := []struct {
		name string
		sp   Space
	}{
		{"empty", Space{}},
		{"unknown field", Space{Dimensions: []Dimension{{Field: "no.such", Min: 1, Max: 2}}}},
		{"duplicate", Space{Dimensions: []Dimension{
			{Field: "execution.workers", Min: 1, Max: 4},
			{Field: "execution.workers", Min: 1, Max: 8},
		}}},
		{"min >= max", Space{Dimensions: []Dimension{{Field: "execution.workers", Min: 8, Max: 8}}}},
		{"log with min 0", Space{Dimensions: []Dimension{{Field: "execution.shard_budget_gbhr", Min: 0, Max: 10, Log: true}}}},
		{"below floor", Space{Dimensions: []Dimension{{Field: "execution.workers", Min: 0, Max: 8}}}},
		{"one choice", Space{Dimensions: []Dimension{{Field: "generator", Choices: []string{"table-scope"}}}}},
		{"choice with range", Space{Dimensions: []Dimension{{Field: "generator", Min: 1, Max: 2, Choices: []string{"table-scope", "partition-scope"}}}}},
		{"base not among choices", Space{Dimensions: []Dimension{{Field: "generator", Choices: []string{"partition-scope", "hybrid-scope"}}}}},
		{"numeric with choices", Space{Dimensions: []Dimension{{Field: "execution.workers", Min: 1, Max: 4, Choices: []string{"a", "b"}}}}},
		{"objective on missing trait", Space{Dimensions: []Dimension{{Field: "objectives.nope", Min: 0, Max: 1}}}},
		{"selector mismatch", Space{Dimensions: []Dimension{{Field: "selector.k", Min: 1, Max: 10}}}},
		{"missing threshold", Space{Dimensions: []Dimension{{Field: "threshold.min", Min: 0, Max: 1}}}},
		{"bad objective weights", Space{
			Dimensions: []Dimension{{Field: "execution.workers", Min: 1, Max: 4}},
			Objective:  Weights{"no_such_component": 1},
		}},
	}
	for _, tc := range cases {
		if err := tc.sp.Validate(base); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	// Control: a well-formed space validates.
	ok := Space{Dimensions: []Dimension{
		{Field: "selector.budget_gbhr", Min: 8, Max: 65536, Log: true},
		{Field: "execution.workers", Min: 1, Max: 32},
		{Field: "objectives.file_count_reduction", Min: 0.05, Max: 0.75},
	}}
	if err := ok.Validate(base); err != nil {
		t.Fatalf("control space rejected: %v", err)
	}
	// Structural checks read the base: quota-adaptive specs have no
	// static weights to tune.
	qa := policy.DefaultDataSpec(true)
	w := Space{Dimensions: []Dimension{{Field: "objectives.file_count_reduction", Min: 0, Max: 1}}}
	if err := w.Validate(qa); err == nil {
		t.Fatal("weight dim on quota-adaptive base validated")
	}
}

func TestDecodeQuantizes(t *testing.T) {
	base := policy.DefaultSpec()
	sp := &Space{Dimensions: []Dimension{
		{Field: "execution.workers", Min: 2, Max: 16},
		{Field: "selector.budget_gbhr", Min: 10, Max: 1000, Log: true},
	}}
	if err := sp.Validate(base); err != nil {
		t.Fatal(err)
	}
	spec, err := sp.Decode(base, map[string]float64{
		"execution.workers":    7.6, // rounds to 8
		"selector.budget_gbhr": 1e9, // clamps to 1000
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Execution.Workers != 8 {
		t.Fatalf("workers = %d, want 8", spec.Execution.Workers)
	}
	if got := spec.Selector.Params["budget_gbhr"].(float64); got != 1000 {
		t.Fatalf("budget = %v, want clamped 1000", got)
	}
	// The base spec is never mutated by a decode.
	if base.Execution.Workers != 8 || policy.DefaultSpec().Selector.Params["budget_gbhr"] != base.Selector.Params["budget_gbhr"] {
		t.Fatal("decode mutated the base spec")
	}
}

func TestWeightRenormalization(t *testing.T) {
	base := policy.DefaultSpec() // ΔF 0.5, ΔM 0.2, GBHr 0.3
	sp := &Space{Dimensions: []Dimension{
		{Field: "objectives.file_count_reduction", Min: 0.05, Max: 0.75},
		{Field: "objectives.compute_cost_gbhr", Min: 0.05, Max: 0.75},
	}}
	if err := sp.Validate(base); err != nil {
		t.Fatal(err)
	}
	spec, err := sp.Decode(base, map[string]float64{
		"objectives.file_count_reduction": 0.6,
		"objectives.compute_cost_gbhr":    0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Untouched ΔM keeps 0.2; the two tuned weights share the remaining
	// 0.8 in proportion (equal raws → 0.4 each).
	var sum float64
	for _, o := range spec.Objectives {
		sum += o.Weight
		if o.Trait.Name == "metadata_reduction" && o.Weight != 0.2 {
			t.Fatalf("untouched weight changed: %v", o.Weight)
		}
		if o.Trait.Name != "metadata_reduction" && math.Abs(o.Weight-0.4) > 1e-12 {
			t.Fatalf("tuned weight = %v, want 0.4", o.Weight)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// All-zero raws split the remaining mass evenly.
	spec, err = sp.Decode(base, map[string]float64{
		"objectives.file_count_reduction": 0,
		"objectives.compute_cost_gbhr":    0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range spec.Objectives {
		if o.Trait.Name != "metadata_reduction" && math.Abs(o.Weight-0.4) > 1e-12 {
			t.Fatalf("zero-raw weight = %v, want 0.4", o.Weight)
		}
	}
	if err := policy.Validate(spec, evalEnv()); err != nil {
		t.Fatalf("renormalized spec does not compile: %v", err)
	}
}

func TestEncodeBaseIsWarmStart(t *testing.T) {
	base := policy.DefaultSpec()
	sp := &Space{Dimensions: []Dimension{
		{Field: "selector.budget_gbhr", Min: 8, Max: 65536, Log: true},
		{Field: "execution.workers", Min: 1, Max: 32},
		{Field: "objectives.file_count_reduction", Min: 0.05, Max: 0.75},
		{Field: "generator", Choices: []string{"table-scope", "partition-scope"}},
	}}
	if err := sp.Validate(base); err != nil {
		t.Fatal(err)
	}
	v, err := sp.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"selector.budget_gbhr":            50 * 1024,
		"execution.workers":               8,
		"objectives.file_count_reduction": 0.5,
		"generator":                       0,
	}
	for k, w := range want {
		if v[k] != w {
			t.Fatalf("%s = %v, want %v", k, v[k], w)
		}
	}
	// Decoding the warm start reproduces the base pipeline exactly.
	spec, err := sp.Decode(base, v)
	if err != nil {
		t.Fatal(err)
	}
	if d := policy.Diff(base, spec); len(d) != 0 {
		t.Fatalf("warm-start decode differs from base: %v", d)
	}
}

func TestChoiceDimensionDecodes(t *testing.T) {
	base := policy.DefaultSpec()
	sp := &Space{Dimensions: []Dimension{
		{Field: "scheduler", Choices: []string{"sequential", "tables-parallel"}},
	}}
	if err := sp.Validate(base); err != nil {
		t.Fatal(err)
	}
	for raw, want := range map[float64]string{
		0: "sequential", 0.99: "sequential", 1: "tables-parallel", 1.999: "tables-parallel", 5: "tables-parallel", -3: "sequential",
	} {
		spec, err := sp.Decode(base, map[string]float64{"scheduler": raw})
		if err != nil {
			t.Fatal(err)
		}
		got := "sequential"
		if spec.Scheduler != nil {
			got = spec.Scheduler.Name
		}
		if got != want {
			t.Fatalf("raw %v: scheduler = %q, want %q", raw, got, want)
		}
	}
}

func TestSpaceParseRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpace([]byte(`{"dimensions": [], "budget": 5}`)); err == nil {
		t.Fatal("unknown top-level field parsed")
	}
	if _, err := ParseSpace([]byte(`{"dimensions": [{"field": "x", "step": 3}]}`)); err == nil {
		t.Fatal("unknown dimension field parsed")
	}
}

// Ensure the example space stays valid against the default spec — it is
// the quickstart artifact README points at.
func TestExampleSpaceValidates(t *testing.T) {
	sp, err := LoadSpaceFile("../../examples/tuning/space.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(policy.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Marshal(); err != nil {
		t.Fatal(err)
	}
	if got := len(sp.Params()); got != len(sp.Dimensions) {
		t.Fatalf("Params() has %d entries for %d dimensions", got, len(sp.Dimensions))
	}
}
