package autotune

import (
	"errors"
	"fmt"

	"autocomp/internal/scenario"
	"autocomp/internal/storage"
)

// Score is the multi-objective summary extracted from one canonical
// scenario trace — the quantities the paper's tuning loop trades off
// (§6.3 tunes thresholds against end-to-end duration; the scenario
// plane exposes the richer production objectives of §5). Every
// component is "lower is better".
type Score struct {
	// SmallFiles is the end-of-run tiny-file count (tiny fraction times
	// file count) — the paper's primary fleet-health metric.
	SmallFiles float64 `json:"small_files"`
	// WriteAmpGBPerDay is the mean GB the compactor rewrote per
	// simulated day — write amplification paid for the cleanup.
	WriteAmpGBPerDay float64 `json:"write_amp_gb_per_day"`
	// GBHr is the total compute spend — budget efficiency.
	GBHr float64 `json:"gbhr"`
	// MakespanHours is the mean execution-plane makespan per cycle
	// (zero for serial pipelines).
	MakespanHours float64 `json:"makespan_hours"`
	// ConflictRate is commit conflicts per committed-or-conflicted job.
	ConflictRate float64 `json:"conflict_rate"`
}

// ScoreTrace extracts the multi-objective score from a finalized trace.
func ScoreTrace(tr *scenario.Trace) Score {
	var s Score
	if tr == nil || len(tr.Cycles) == 0 {
		return s
	}
	var bytesRewritten int64
	var makespan float64
	var done, conflicts int
	for i := range tr.Cycles {
		c := &tr.Cycles[i]
		bytesRewritten += c.BytesRewritten
		makespan += c.MakespanHours
		done += c.Exec.Done
		conflicts += c.Exec.Conflicts
	}
	days := float64(len(tr.Cycles))
	s.SmallFiles = tr.Final.Fleet.TinyFrac * float64(tr.Final.Fleet.Files)
	s.WriteAmpGBPerDay = float64(bytesRewritten) / float64(storage.GB) / days
	s.GBHr = tr.Final.ActualGBHr
	s.MakespanHours = makespan / days
	if done+conflicts > 0 {
		s.ConflictRate = float64(conflicts) / float64(done+conflicts)
	}
	return s
}

// Weights maps score components to their share of the composite. Known
// components: small_files, write_amp, gbhr, makespan, conflicts.
type Weights map[string]float64

// scoreComponents is the closed set of weightable components, each
// paired with its projection of a Score.
var scoreComponents = []struct {
	name string
	get  func(Score) float64
}{
	{"small_files", func(s Score) float64 { return s.SmallFiles }},
	{"write_amp", func(s Score) float64 { return s.WriteAmpGBPerDay }},
	{"gbhr", func(s Score) float64 { return s.GBHr }},
	{"makespan", func(s Score) float64 { return s.MakespanHours }},
	{"conflicts", func(s Score) float64 { return s.ConflictRate }},
}

// DefaultWeights is the composite weighting used when a space does not
// declare one: fleet health first, then compute spend, then the
// execution-side costs.
func DefaultWeights() Weights {
	return Weights{
		"small_files": 0.35,
		"gbhr":        0.25,
		"write_amp":   0.15,
		"conflicts":   0.15,
		"makespan":    0.10,
	}
}

// validate rejects unknown components and non-positive weight mass.
func (w Weights) validate() error {
	if len(w) == 0 {
		return nil
	}
	known := map[string]bool{}
	for _, c := range scoreComponents {
		known[c.name] = true
	}
	var errs []error
	total := 0.0
	for name, v := range w {
		if !known[name] {
			errs = append(errs, fmt.Errorf("autotune: unknown objective component %q", name))
		}
		if v < 0 {
			errs = append(errs, fmt.Errorf("autotune: objective %q has negative weight %v", name, v))
		}
		total += v
	}
	if len(w) > 0 && total <= 0 {
		errs = append(errs, errors.New("autotune: objective weights sum to zero"))
	}
	return errors.Join(errs...)
}

// normalized returns the weights scaled to sum 1, with DefaultWeights
// filling in for an empty map.
func (w Weights) normalized() Weights {
	if len(w) == 0 {
		w = DefaultWeights()
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	out := make(Weights, len(w))
	for k, v := range w {
		out[k] = v / total
	}
	return out
}

// Composite collapses a trial score into the scalar the optimizer
// minimizes: the weighted sum of per-component ratios against the
// baseline score on the same scenario and seed. The baseline therefore
// scores exactly 1.0, and a composite below 1 means the trial strictly
// improves on it under the chosen weighting. A component the baseline
// does not exhibit (zero denominator) contributes its weight when the
// trial matches it at zero and a 1+value penalty ratio when the trial
// regresses it.
func Composite(s, base Score, w Weights) float64 {
	const eps = 1e-9
	total := 0.0
	for _, c := range scoreComponents {
		weight := w[c.name]
		if weight == 0 {
			continue
		}
		v, b := c.get(s), c.get(base)
		ratio := 1.0
		switch {
		case b > eps:
			ratio = v / b
		case v > eps:
			ratio = 1 + v
		}
		total += weight * ratio
	}
	return total
}
