// Package autotune is AutoComp's closed-loop policy tuning subsystem:
// it composes the declarative policy plane (internal/policy), the
// deterministic scenario engine (internal/scenario), and the black-box
// optimizers of internal/tuner into the §6.3 loop the paper runs with
// MLOS driving FLAML — perturb a policy spec, replay workloads, score
// the outcome, hill-climb.
//
// A Space declares which Spec fields are tunable and maps each trial's
// parameter vector back onto a concrete spec (Decode) and a spec back
// onto a vector (Encode), so the seed optimizers search bare
// tuner.Params and never learn what a policy is. Every decoded spec is
// validated through policy.Compile before it is run; invalid points
// score as failed trials, never crashes. The evaluation harness (Run)
// replays scenarios on virtual time with sim.Child-derived trial seeds,
// so a tune is as deterministic as a golden trace: same seed, space,
// scenarios, and budget — byte-identical trial log and winner spec, at
// any worker count.
package autotune

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"

	"autocomp/internal/policy"
	"autocomp/internal/tuner"
)

// Dimension is one tunable axis of a Space. Numeric dimensions carry a
// [Min, Max] range (searched in log space when Log is set, for knobs
// spanning orders of magnitude); choice dimensions enumerate component
// names instead and encode as the choice index.
type Dimension struct {
	// Field names the policy.Spec knob this dimension perturbs; see
	// docs/tuning.md for the catalog ("execution.workers",
	// "selector.budget_gbhr", "objectives.<trait>", "generator", ...).
	Field string  `json:"field"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Log   bool    `json:"log,omitempty"`
	// Choices makes this an enum dimension over component names.
	Choices []string `json:"choices,omitempty"`
}

// Space declares a search space over policy.Spec fields plus the score
// weighting used to collapse the multi-objective trace score into the
// scalar the optimizer minimizes.
type Space struct {
	Name        string      `json:"name,omitempty"`
	Description string      `json:"description,omitempty"`
	Dimensions  []Dimension `json:"dimensions"`
	// Objective weights the composite score's components (small_files,
	// write_amp, gbhr, makespan, conflicts). Empty means DefaultWeights;
	// weights are normalized to sum 1.
	Objective Weights `json:"objective,omitempty"`
}

// ParseSpace decodes a space from JSON, rejecting unknown fields so
// typos in operator-authored files fail loudly.
func ParseSpace(b []byte) (*Space, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Space
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("autotune: parse space: %w", err)
	}
	return &s, nil
}

// LoadSpaceFile parses a space from a JSON file.
func LoadSpaceFile(path string) (*Space, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("autotune: %w", err)
	}
	s, err := ParseSpace(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders the space as indented JSON (the on-disk format).
func (s *Space) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// fieldKind classifies catalog entries.
type fieldKind int

const (
	kindFloat fieldKind = iota
	kindInt
	kindChoice
)

// fieldDef is one entry of the tunable-field catalog: how to read and
// write the knob on a spec, the structural requirement the base spec
// must meet, and the legal floor for integer knobs.
type fieldDef struct {
	kind  fieldKind
	floor float64
	// check verifies the base spec has the structure the knob needs.
	check func(s *policy.Spec) error
	get   func(s *policy.Spec) (float64, error)
	set   func(s *policy.Spec, v float64)
	// getS/setS replace get/set for choice dimensions.
	getS func(s *policy.Spec) (string, error)
	setS func(s *policy.Spec, c string)
	// weight marks MOOP objective-weight dimensions, which decode with a
	// simplex renormalization pass (see Decode).
	weight bool
}

// selectorParam builds a fieldDef for a float param of a named selector.
func selectorParam(selName, param string) fieldDef {
	return fieldDef{
		kind: kindFloat,
		check: func(s *policy.Spec) error {
			if s.Selector == nil || s.Selector.Name != selName {
				return fmt.Errorf("base spec selector is not %q", selName)
			}
			return nil
		},
		get: func(s *policy.Spec) (float64, error) {
			v, ok := s.Selector.Params[param].(float64)
			if !ok {
				return 0, fmt.Errorf("selector param %q is not a number", param)
			}
			return v, nil
		},
		set: func(s *policy.Spec, v float64) {
			if s.Selector.Params == nil {
				s.Selector.Params = map[string]any{}
			}
			s.Selector.Params[param] = v
		},
	}
}

// need returns a check that requires a spec section to be present.
func need(section string, present func(*policy.Spec) bool) func(*policy.Spec) error {
	return func(s *policy.Spec) error {
		if !present(s) {
			return fmt.Errorf("base spec has no %s section", section)
		}
		return nil
	}
}

func needMaint(s *policy.Spec) bool { return s.Maintenance != nil }
func needExec(s *policy.Spec) bool  { return s.Execution != nil }
func needTrig(s *policy.Spec) bool  { return s.Trigger != nil }

// lookupField resolves a dimension's field name in the catalog.
// "objectives.<trait>" resolves dynamically to that trait's MOOP weight.
func lookupField(field string) (fieldDef, error) {
	if trait, ok := strings.CutPrefix(field, "objectives."); ok {
		if trait == "" {
			return fieldDef{}, errors.New("objectives. needs a trait name")
		}
		return fieldDef{
			kind:   kindFloat,
			weight: true,
			check: func(s *policy.Spec) error {
				if s.QuotaAdaptive {
					return errors.New("quota-adaptive specs have no static weights to tune")
				}
				for _, o := range s.Objectives {
					if o.Trait.Name == trait {
						return nil
					}
				}
				return fmt.Errorf("base spec has no objective on trait %q", trait)
			},
			get: func(s *policy.Spec) (float64, error) {
				for _, o := range s.Objectives {
					if o.Trait.Name == trait {
						return o.Weight, nil
					}
				}
				return 0, fmt.Errorf("no objective on trait %q", trait)
			},
			set: func(s *policy.Spec, v float64) {
				for i := range s.Objectives {
					if s.Objectives[i].Trait.Name == trait {
						s.Objectives[i].Weight = v
					}
				}
			},
		}, nil
	}
	switch field {
	case "selector.budget_gbhr":
		return selectorParam("budget", "budget_gbhr"), nil
	case "selector.k":
		d := selectorParam("top-k", "k")
		d.kind = kindInt
		d.floor = 1
		return d, nil
	case "threshold.min":
		return fieldDef{
			kind:  kindFloat,
			check: need("threshold", func(s *policy.Spec) bool { return s.Threshold != nil }),
			get:   func(s *policy.Spec) (float64, error) { return s.Threshold.Min, nil },
			set:   func(s *policy.Spec, v float64) { s.Threshold.Min = v },
		}, nil
	case "maintenance.retain_snapshots":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("maintenance", needMaint),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Maintenance.RetainSnapshots), nil },
			set:   func(s *policy.Spec, v float64) { s.Maintenance.RetainSnapshots = int(v) },
		}, nil
	case "maintenance.checkpoint_every_versions":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("maintenance", needMaint),
			get: func(s *policy.Spec) (float64, error) {
				return float64(s.Maintenance.CheckpointEveryVersions), nil
			},
			set: func(s *policy.Spec, v float64) { s.Maintenance.CheckpointEveryVersions = int64(v) },
		}, nil
	case "maintenance.min_manifest_surplus":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("maintenance", needMaint),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Maintenance.MinManifestSurplus), nil },
			set:   func(s *policy.Spec, v float64) { s.Maintenance.MinManifestSurplus = int(v) },
		}, nil
	case "execution.workers":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("execution", needExec),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Execution.Workers), nil },
			set:   func(s *policy.Spec, v float64) { s.Execution.Workers = int(v) },
		}, nil
	case "execution.shards":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("execution", needExec),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Execution.Shards), nil },
			set:   func(s *policy.Spec, v float64) { s.Execution.Shards = int(v) },
		}, nil
	case "execution.shard_budget_gbhr":
		return fieldDef{
			kind:  kindFloat,
			check: need("execution", needExec),
			get:   func(s *policy.Spec) (float64, error) { return s.Execution.ShardBudgetGBHr, nil },
			set:   func(s *policy.Spec, v float64) { s.Execution.ShardBudgetGBHr = v },
		}, nil
	case "execution.decide_shards":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("execution", needExec),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Execution.DecideShards), nil },
			set:   func(s *policy.Spec, v float64) { s.Execution.DecideShards = int(v) },
		}, nil
	case "trigger.every_commits":
		return fieldDef{
			kind: kindInt, floor: 1,
			// every_commits may create the trigger section: tuning can
			// discover that a full-scan pipeline is better off
			// incremental.
			check: func(*policy.Spec) error { return nil },
			get: func(s *policy.Spec) (float64, error) {
				if s.Trigger == nil {
					return 0, errors.New("spec has no trigger section")
				}
				return float64(s.Trigger.EveryCommits), nil
			},
			set: func(s *policy.Spec, v float64) {
				if s.Trigger == nil {
					s.Trigger = &policy.TriggerSpec{}
				}
				s.Trigger.EveryCommits = int64(v)
			},
		}, nil
	case "trigger.bytes_written":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("trigger", needTrig),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Trigger.BytesWritten), nil },
			set:   func(s *policy.Spec, v float64) { s.Trigger.BytesWritten = int64(v) },
		}, nil
	case "trigger.reconcile_every":
		return fieldDef{
			kind: kindInt, floor: 1,
			check: need("trigger", needTrig),
			get:   func(s *policy.Spec) (float64, error) { return float64(s.Trigger.ReconcileEvery), nil },
			set:   func(s *policy.Spec, v float64) { s.Trigger.ReconcileEvery = int(v) },
		}, nil
	case "generator":
		return fieldDef{
			kind: kindChoice,
			check: func(s *policy.Spec) error {
				if len(s.Generators) != 1 {
					return fmt.Errorf("generator choice needs exactly one base generator, spec has %d", len(s.Generators))
				}
				return nil
			},
			getS: func(s *policy.Spec) (string, error) {
				if len(s.Generators) != 1 {
					return "", errors.New("spec does not have exactly one generator")
				}
				return s.Generators[0].Name, nil
			},
			setS: func(s *policy.Spec, c string) { s.Generators = []policy.Component{policy.C(c)} },
		}, nil
	case "scheduler":
		return fieldDef{
			kind:  kindChoice,
			check: func(*policy.Spec) error { return nil },
			getS: func(s *policy.Spec) (string, error) {
				if s.Scheduler == nil {
					return "sequential", nil
				}
				return s.Scheduler.Name, nil
			},
			setS: func(s *policy.Spec, c string) { s.Scheduler = &policy.Component{Name: c} },
		}, nil
	}
	return fieldDef{}, fmt.Errorf("unknown tunable field %q", field)
}

// Validate checks the space against the base spec it will perturb:
// every dimension must resolve in the catalog, meet its field's
// structural requirement on the base, and carry a sane range. The base
// spec must itself encode cleanly (choice dims require the base value
// among the choices), so a tune can warm-start from it.
func (s *Space) Validate(base *policy.Spec) error {
	if s == nil {
		return errors.New("autotune: nil space")
	}
	if base == nil {
		return errors.New("autotune: nil base spec")
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("autotune: "+format, args...))
	}
	if len(s.Dimensions) == 0 {
		fail("space has no dimensions")
	}
	seen := map[string]bool{}
	for i, d := range s.Dimensions {
		where := fmt.Sprintf("dimensions[%d] (%s)", i, d.Field)
		if seen[d.Field] {
			fail("%s: duplicate field", where)
			continue
		}
		seen[d.Field] = true
		def, err := lookupField(d.Field)
		if err != nil {
			fail("%s: %v", where, err)
			continue
		}
		if err := def.check(base); err != nil {
			fail("%s: %v", where, err)
			continue
		}
		if def.kind == kindChoice {
			if len(d.Choices) < 2 {
				fail("%s: choice dimension needs >= 2 choices", where)
			}
			if d.Min != 0 || d.Max != 0 || d.Log {
				fail("%s: choice dimension must not set min/max/log", where)
			}
			cur, err := def.getS(base)
			if err != nil {
				fail("%s: %v", where, err)
				continue
			}
			if choiceIndex(d.Choices, cur) < 0 {
				fail("%s: base value %q not among choices", where, cur)
			}
			continue
		}
		if len(d.Choices) > 0 {
			fail("%s: numeric dimension must not set choices", where)
		}
		if d.Min >= d.Max {
			fail("%s: min %v must be < max %v", where, d.Min, d.Max)
		}
		if d.Log && d.Min <= 0 {
			fail("%s: log dimension needs min > 0", where)
		}
		if d.Min < def.floor {
			fail("%s: min %v below the field's floor %v", where, d.Min, def.floor)
		}
		if def.weight && d.Min < 0 {
			fail("%s: objective weights must be >= 0", where)
		}
	}
	if err := s.Objective.validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func choiceIndex(choices []string, v string) int {
	for i, c := range choices {
		if c == v {
			return i
		}
	}
	return -1
}

// Params maps the space onto the optimizer's bare dimensions, in
// declaration order. Choice dimensions search the index range [0, n).
func (s *Space) Params() []tuner.Param {
	out := make([]tuner.Param, 0, len(s.Dimensions))
	for _, d := range s.Dimensions {
		p := tuner.Param{Name: d.Field, Min: d.Min, Max: d.Max, Log: d.Log}
		if len(d.Choices) > 0 {
			p.Min, p.Max, p.Log = 0, float64(len(d.Choices)), false
		}
		out = append(out, p)
	}
	return out
}

// quantize maps a raw optimizer coordinate onto the dimension's lattice:
// clamp into range, round integer knobs, floor-index choices. Weight
// dimensions only floor at zero: their [Min, Max] is the optimizer's
// search box, not a hard constraint, because the simplex
// renormalization that follows may scale a weight outside the box —
// and clamping the scaled value would break Decode's idempotence
// (Decode(Encode(Decode(v))) must equal Decode(v)).
func (d Dimension) quantize(def fieldDef, v float64) float64 {
	if def.weight {
		if v < 0 {
			return 0
		}
		return v
	}
	if def.kind == kindChoice {
		idx := int(math.Floor(v))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(d.Choices) {
			idx = len(d.Choices) - 1
		}
		return float64(idx)
	}
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	if def.kind == kindInt {
		v = math.Round(v)
		if v < def.floor {
			v = def.floor
		}
	}
	return v
}

// Decode maps an optimizer parameter vector onto a concrete policy
// spec: clone the base, quantize and apply every dimension, then
// renormalize the MOOP weight simplex if any weight dimension was
// tuned (static weights must sum to 1; the tuned weights are scaled to
// fill whatever mass the untuned objectives leave). Decode is
// idempotent on its own output: Decode(Encode(Decode(v))) ==
// Decode(v).
func (s *Space) Decode(base *policy.Spec, params map[string]float64) (*policy.Spec, error) {
	out := base.Clone()
	var weightDims []Dimension
	for _, d := range s.Dimensions {
		def, err := lookupField(d.Field)
		if err != nil {
			return nil, err
		}
		v, ok := params[d.Field]
		if !ok {
			return nil, fmt.Errorf("autotune: params missing dimension %q", d.Field)
		}
		q := d.quantize(def, v)
		if def.kind == kindChoice {
			def.setS(out, d.Choices[int(q)])
			continue
		}
		def.set(out, q)
		if def.weight {
			weightDims = append(weightDims, d)
		}
	}
	if len(weightDims) > 0 {
		renormalizeWeights(out, weightDims)
	}
	return out, nil
}

// renormalizeWeights scales the tuned objective weights so the full
// weight vector sums to 1 again: the untuned objectives keep their base
// weights and the tuned ones share the remaining mass in proportion to
// their raw coordinates. Scaling by a common factor preserves the
// relative importance the optimizer expressed, and the map is
// idempotent, which is what makes Decode∘Encode the identity on decoded
// specs.
func renormalizeWeights(s *policy.Spec, dims []Dimension) {
	tuned := map[string]bool{}
	for _, d := range dims {
		tuned[strings.TrimPrefix(d.Field, "objectives.")] = true
	}
	var fixed, raw float64
	for _, o := range s.Objectives {
		if tuned[o.Trait.Name] {
			raw += o.Weight
		} else {
			fixed += o.Weight
		}
	}
	remaining := 1 - fixed
	if remaining < 0 {
		remaining = 0
	}
	// A raw sum already on the simplex (to well within the MOOP
	// validator's 1e-6 tolerance) is left untouched: scaling by the
	// ~1.0 correction factor would drift the low bits and re-decoding
	// an encoded spec must be a bit-exact no-op.
	if math.Abs(raw-remaining) <= 1e-9*math.Max(1, remaining) {
		return
	}
	for i := range s.Objectives {
		if !tuned[s.Objectives[i].Trait.Name] {
			continue
		}
		if raw > 0 {
			s.Objectives[i].Weight *= remaining / raw
		} else {
			s.Objectives[i].Weight = remaining / float64(len(dims))
		}
	}
}

// Encode maps a spec onto the optimizer's parameter vector by reading
// every dimension's current value. Encoding the base spec yields the
// warm-start point a tune begins from.
func (s *Space) Encode(spec *policy.Spec) (map[string]float64, error) {
	out := make(map[string]float64, len(s.Dimensions))
	for _, d := range s.Dimensions {
		def, err := lookupField(d.Field)
		if err != nil {
			return nil, err
		}
		if def.kind == kindChoice {
			cur, err := def.getS(spec)
			if err != nil {
				return nil, fmt.Errorf("autotune: encode %s: %w", d.Field, err)
			}
			idx := choiceIndex(d.Choices, cur)
			if idx < 0 {
				return nil, fmt.Errorf("autotune: encode %s: value %q not among choices", d.Field, cur)
			}
			out[d.Field] = float64(idx)
			continue
		}
		v, err := def.get(spec)
		if err != nil {
			return nil, fmt.Errorf("autotune: encode %s: %w", d.Field, err)
		}
		out[d.Field] = v
	}
	return out, nil
}
