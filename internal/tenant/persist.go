package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"autocomp/internal/fleet"
	"autocomp/internal/lstlog"
	"autocomp/internal/sim"
)

// diskState is a tenant's persisted lake: the fleet snapshot (virtual
// time and RNG positions included) plus the tenant's cycle counter.
// One file per tenant under <root>/tenants/<name>/fleet.json, written
// atomically after every completed cycle, so a SIGKILL at any instant
// leaves either the previous or the current cycle's state — never a
// torn one.
type diskState struct {
	Name  string       `json:"name"`
	Day   int          `json:"day"`
	Fleet *fleet.State `json:"fleet"`
}

// persistRel is the tenant's state file, relative to the store root.
func (t *Tenant) persistRel() string { return "tenants/" + t.cfg.Name + "/fleet.json" }

// resolveStoreLocked opens (or drops) the tenant's durable store to
// match the compiled policy's storage section. Called from
// setPolicyLocked, so a hot reload can move a tenant between memory and
// log backends at a cycle boundary.
func (t *Tenant) resolveStoreLocked() error {
	st := t.svc.Compiled.Storage
	if !st.Durable() {
		t.store = nil
		return nil
	}
	if t.store != nil && t.store.Root() == st.Root {
		return nil
	}
	s, err := lstlog.Open(lstlog.Config{Root: st.Root, Fsync: st.Fsync})
	if err != nil {
		return fmt.Errorf("tenant %s: storage: %w", t.cfg.Name, err)
	}
	t.store = s
	return nil
}

// loadPersisted reads the tenant's state file, returning (nil, 0, nil)
// on a cold start. A snapshot persisted under a different fleet
// configuration is rejected loudly: silently re-simulating from day 0
// under the old name would masquerade as a recovery.
func (t *Tenant) loadPersisted() (*fleet.Fleet, int, error) {
	b, err := t.store.ReadSubFile(t.persistRel())
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("tenant %s: restore: %w", t.cfg.Name, err)
	}
	var st diskState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, 0, fmt.Errorf("tenant %s: restore: parse %s: %w", t.cfg.Name, t.persistRel(), err)
	}
	if st.Name != t.cfg.Name || st.Fleet == nil {
		return nil, 0, fmt.Errorf("tenant %s: restore: %s does not hold this tenant's state", t.cfg.Name, t.persistRel())
	}
	if st.Fleet.Config != t.cfg.fleetConfig() {
		return nil, 0, fmt.Errorf("tenant %s: restore: persisted state was built from a different fleet config; remove %s or restore the config", t.cfg.Name, t.persistRel())
	}
	f, err := fleet.Restore(st.Fleet, sim.NewClock())
	if err != nil {
		return nil, 0, fmt.Errorf("tenant %s: restore: %w", t.cfg.Name, err)
	}
	return f, st.Day, nil
}

// persistLocked writes the tenant's current state to its store, if the
// policy runs a durable backend. Callers hold t.mu.
func (t *Tenant) persistLocked() error {
	if t.store == nil {
		return nil
	}
	b, err := json.Marshal(&diskState{Name: t.cfg.Name, Day: t.day, Fleet: t.fleet.Snapshot()})
	if err == nil {
		err = t.store.WriteSubFile(t.persistRel(), b)
	}
	if err != nil {
		return fmt.Errorf("tenant %s: persist: %w", t.cfg.Name, err)
	}
	return nil
}
