package tenant

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autocomp/internal/policy"
)

// Manager hosts many tenants in one process, driving each tenant's
// OODA cycles on its own goroutine. Tenants are fully isolated — own
// fleet, own RNG streams, own tracer — so concurrency between them
// needs no coordination beyond each tenant's internal lock; the manager
// only owns registration and lifecycle.
type Manager struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
	order   []string
	wg      sync.WaitGroup
	closing chan struct{}
	closed  bool
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		tenants: make(map[string]*Tenant),
		closing: make(chan struct{}),
	}
}

// Add registers a tenant under its name (created state; call Start to
// run it). Names are unique per manager.
func (m *Manager) Add(t *Tenant) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("tenant: manager is shutting down")
	}
	name := t.Name()
	if _, ok := m.tenants[name]; ok {
		return fmt.Errorf("tenant %q already exists", name)
	}
	m.tenants[name] = t
	m.order = append(m.order, name)
	return nil
}

// Create builds a tenant from cfg/spec/opts and registers it.
func (m *Manager) Create(cfg Config, spec *policy.Spec, opts Options) (*Tenant, error) {
	t, err := New(cfg, spec, opts)
	if err != nil {
		return nil, err
	}
	if err := m.Add(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Get returns the named tenant.
func (m *Manager) Get(name string) (*Tenant, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	return t, ok
}

// List returns all tenants in registration order.
func (m *Manager) List() []*Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Tenant, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.tenants[name])
	}
	return out
}

// Names returns the registered tenant names, sorted.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Start launches the tenant's cycle loop (created → running). The loop
// runs the tenant's configured days, honouring pause/resume/stop, then
// stops the tenant and closes its Done channel.
func (m *Manager) Start(t *Tenant) error {
	t.mu.Lock()
	if t.state != StateCreated {
		st := t.state
		t.mu.Unlock()
		return fmt.Errorf("tenant %s: cannot start from %s", t.cfg.Name, st)
	}
	t.setStateLocked(StateRunning)
	t.mu.Unlock()
	m.wg.Add(1)
	go m.runLoop(t)
	return nil
}

// runLoop drives one tenant to completion: cycles while running, parks
// while paused, exits on stop/completion/failure or manager shutdown.
func (m *Manager) runLoop(t *Tenant) {
	defer m.wg.Done()
	defer close(t.done)
	for {
		t.mu.Lock()
		for t.state == StatePaused && !t.stopRq && !m.isClosing() {
			t.cond.Wait()
		}
		if t.stopRq || m.isClosing() || t.day >= t.cfg.Days {
			t.setStateLocked(StateStopped)
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		if err := t.StepCycle(); err != nil {
			t.mu.Lock()
			t.err = err
			t.setStateLocked(StateStopped)
			t.mu.Unlock()
			t.logf("tenant %s: stopped: %v", t.cfg.Name, err)
			return
		}
	}
}

// isClosing reports whether Shutdown has been requested. Safe to call
// while holding a tenant lock (it only reads the closing channel).
func (m *Manager) isClosing() bool {
	select {
	case <-m.closing:
		return true
	default:
		return false
	}
}

// Shutdown drains the manager: every tenant finishes its in-flight
// cycle and stops at the next boundary. It waits up to timeout for the
// drain, returning an error if tenants were still mid-cycle when it
// expired.
func (m *Manager) Shutdown(timeout time.Duration) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.closing)
	}
	tenants := make([]*Tenant, 0, len(m.order))
	for _, name := range m.order {
		tenants = append(tenants, m.tenants[name])
	}
	m.mu.Unlock()
	// Wake paused loops so they observe the shutdown.
	for _, t := range tenants {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("tenant: shutdown drain exceeded %v", timeout)
	}
}
