package tenant

import (
	"autocomp/internal/telemetry"
)

// FleetStats is the tenant's end-of-cycle substrate view served by the
// management API.
type FleetStats struct {
	Tables      int     `json:"tables"`
	Files       int64   `json:"files"`
	MetaObjects int64   `json:"meta_objects"`
	TinyFrac    float64 `json:"tiny_frac"`
}

// SchedStats describes the tenant's execution plane, when the policy
// enables one.
type SchedStats struct {
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
}

// Snapshot is a point-in-time view of one tenant: lifecycle, policy
// provenance, fleet state, and the planes its spec enabled. Served by
// GET /api/tenants/{t} and safe to take while the tenant runs (the
// tenant lock serializes it against cycles).
type Snapshot struct {
	Name        string `json:"name"`
	State       State  `json:"state"`
	Seed        int64  `json:"seed"`
	Day         int    `json:"day"`
	DaysPlanned int    `json:"days_planned"`
	Cycles      int64  `json:"cycles"`

	Policy      string `json:"policy"`
	Provenance  string `json:"provenance"`
	PolicyError string `json:"policy_error,omitempty"`
	Error       string `json:"error,omitempty"`

	Fleet FleetStats `json:"fleet"`
	// DirtySet is the incremental plane's dirty-set size (nil when the
	// policy has no trigger section).
	DirtySet *int `json:"dirty_set,omitempty"`
	// Sched describes the worker pool (nil when cycles act serially).
	Sched *SchedStats `json:"sched,omitempty"`

	Runs int `json:"runs"`
	// LastCycle is the most recent decision-trace event, if any.
	LastCycle *telemetry.CycleEvent `json:"last_cycle,omitempty"`
}

// Status assembles the tenant's snapshot. It holds the tenant lock, so
// the view is always a consistent cycle boundary.
func (t *Tenant) Status() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Name:        t.cfg.Name,
		State:       t.state,
		Seed:        t.cfg.Seed,
		Day:         t.day,
		DaysPlanned: t.cfg.Days,
		Cycles:      t.tracer.Seq(),
		Policy:      specName(t.spec),
		Provenance:  t.provenance,
		PolicyError: t.policyErr,
		Fleet: FleetStats{
			Tables:      t.fleet.TableCount(),
			Files:       t.fleet.TotalFiles(),
			MetaObjects: t.fleet.TotalMetadataObjects(),
			TinyFrac:    t.fleet.TinyFileFraction(),
		},
		Runs: len(t.runs),
	}
	if t.err != nil {
		s.Error = t.err.Error()
	}
	if t.svc.Feed != nil {
		n := t.svc.Feed.Tracker.DirtyCount()
		s.DirtySet = &n
	}
	if t.svc.Sched != nil && t.svc.Compiled.HasExecution {
		s.Sched = &SchedStats{
			Workers: t.svc.Compiled.Sched.Workers,
			Shards:  t.svc.Compiled.Sched.Shards,
		}
	}
	if ev, ok := t.tracer.Last(); ok {
		s.LastCycle = &ev
	}
	return s
}
