package tenant

import (
	"fmt"
	"sync"

	"autocomp/internal/scenario"
	"autocomp/internal/telemetry"
)

// RunStatus is a scenario run's execution state.
type RunStatus string

// Run states. Terminal states are done and failed.
const (
	RunPending RunStatus = "pending"
	RunRunning RunStatus = "running"
	RunDone    RunStatus = "done"
	RunFailed  RunStatus = "failed"
)

// Run is one scenario execution submitted to a tenant over the
// management API. The engine runs on its own goroutine with its own
// fleet, clock, and RNG streams (scenario engines never touch the
// tenant's live lake), emitting per-cycle CycleEvents on a private
// tracer that the API streams as JSONL and, on completion, producing
// the canonical trace bytes golden files are compared against.
type Run struct {
	id     string
	tenant string
	spec   *scenario.Spec
	tracer *telemetry.Tracer

	mu     sync.Mutex
	status RunStatus
	day    int
	trace  []byte
	err    error
	done   chan struct{}
}

// RunInfo is a run's JSON summary.
type RunInfo struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	Scenario string    `json:"scenario"`
	Seed     int64     `json:"seed"`
	Days     int       `json:"days"`
	Status   RunStatus `json:"status"`
	Day      int       `json:"day"`
	Error    string    `json:"error,omitempty"`
}

// ID returns the run's tenant-scoped identifier ("r1", "r2", ...).
func (r *Run) ID() string { return r.id }

// Tracer returns the run's private decision-trace stream.
func (r *Run) Tracer() *telemetry.Tracer { return r.tracer }

// Done is closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Info returns the run's summary.
func (r *Run) Info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID:       r.id,
		Tenant:   r.tenant,
		Scenario: r.spec.Name,
		Seed:     r.spec.Seed,
		Days:     r.spec.Days,
		Status:   r.status,
		Day:      r.day,
	}
	if r.err != nil {
		info.Error = r.err.Error()
	}
	return info
}

// Trace returns the canonical scenario trace bytes (nil until the run
// is done) — the exact bytes golden files under examples/scenarios/
// golden/ hold, so remote clients can diff against committed goldens.
func (r *Run) Trace() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Events returns the run's CycleEvents with tracer sequence numbers
// greater than afterSeq, oldest first — the streaming cursor for the
// JSONL events endpoint.
func (r *Run) Events(afterSeq int64) []telemetry.CycleEvent {
	all := r.tracer.Recent(r.spec.Days + 1)
	out := make([]telemetry.CycleEvent, 0, len(all))
	for _, ev := range all {
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	return out
}

// SubmitRun validates spec and starts it on its own goroutine,
// returning the registered run immediately. The run is independent of
// the tenant's live lake; only its telemetry carries the tenant label.
func (t *Tenant) SubmitRun(spec *scenario.Spec) (*Run, error) {
	if spec == nil {
		return nil, fmt.Errorf("tenant %s: nil scenario spec", t.cfg.Name)
	}
	if err := spec.Validate(); err != nil {
		mTenantRuns.With(t.cfg.Name, "rejected").Inc()
		return nil, err
	}
	t.mu.Lock()
	t.nextRun++
	r := &Run{
		id:     fmt.Sprintf("r%d", t.nextRun),
		tenant: t.cfg.Name,
		spec:   spec,
		tracer: telemetry.NewTracer(spec.Days + 1),
		status: RunPending,
		done:   make(chan struct{}),
	}
	t.runs[r.id] = r
	t.runIDs = append(t.runIDs, r.id)
	t.mu.Unlock()
	go r.execute(t.cfg.Name)
	return r, nil
}

// Run returns the identified run.
func (t *Tenant) Run(id string) (*Run, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.runs[id]
	return r, ok
}

// Runs returns the tenant's runs in submission order.
func (t *Tenant) Runs() []*Run {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Run, 0, len(t.runIDs))
	for _, id := range t.runIDs {
		out = append(out, t.runs[id])
	}
	return out
}

// execute drives the scenario engine to completion, stepping day by
// day so Info reports live progress.
func (r *Run) execute(tenant string) {
	defer close(r.done)
	eng, err := scenario.NewEngineOpts(r.spec, scenario.EngineOptions{
		Tenant: tenant,
		Tracer: r.tracer,
	})
	if err != nil {
		r.finish(nil, err)
		return
	}
	r.setStatus(RunRunning)
	for day := 1; day <= r.spec.Days; day++ {
		if err := eng.StepDay(); err != nil {
			r.finish(nil, err)
			return
		}
		r.mu.Lock()
		r.day = day
		r.mu.Unlock()
	}
	r.finish(eng.Finalize().Marshal(), nil)
}

func (r *Run) setStatus(s RunStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.status = s
}

func (r *Run) finish(trace []byte, err error) {
	r.mu.Lock()
	if err != nil {
		r.status = RunFailed
		r.err = err
	} else {
		r.status = RunDone
		r.trace = trace
	}
	tenant, status := r.tenant, string(r.status)
	r.mu.Unlock()
	mTenantRuns.With(tenant, status).Inc()
}
