package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autocomp/internal/core"
	"autocomp/internal/policy"
	"autocomp/internal/scenario/testkit"
	"autocomp/internal/sim"
	"autocomp/internal/telemetry"

	"autocomp/internal/fleet"
)

const (
	testSeed   = 11
	testTables = 60
	testDays   = 6
)

// newTestTenant builds a tenant that records decision fingerprints.
func newTestTenant(t *testing.T, name string, spec *policy.Spec, opts Options) (*Tenant, *[]string) {
	t.Helper()
	prints := &[]string{}
	base := opts.OnCycle
	opts.OnCycle = func(ev telemetry.CycleEvent, rep *core.Report) {
		*prints = append(*prints, testkit.DecisionFingerprint(rep.Decision))
		if base != nil {
			base(ev, rep)
		}
	}
	tn, err := New(Config{
		Name:          name,
		Seed:          testSeed,
		Days:          testDays,
		InitialTables: testTables,
	}, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tn, prints
}

// baselineFingerprints ages the same seed/topology with a hand-wired
// fleet + SpecService loop — the exact pipeline the pre-tenant daemon
// ran — and returns per-cycle decision fingerprints.
func baselineFingerprints(t *testing.T, spec *policy.Spec, days int) []string {
	t.Helper()
	f := fleet.New(testkit.FleetConfig(testSeed, testTables), sim.NewClock())
	svc, err := f.ServiceFromSpec(spec.Clone(), testkit.Model(), fleet.SpecRunOptions{
		Tracer: telemetry.NewTracer(days + 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var prints []string
	for d := 1; d <= days; d++ {
		f.AdvanceDay()
		rep, _, err := svc.RunCycle()
		if err != nil {
			t.Fatalf("baseline day %d: %v", d, err)
		}
		prints = append(prints, testkit.DecisionFingerprint(rep.Decision))
	}
	return prints
}

// TestTenantMatchesHandWiredPipeline pins the management plane's
// central refactor guarantee: wrapping a lake in a Tenant changes
// nothing about its decisions. Every cycle's fingerprint must be
// byte-identical to the hand-wired fleet loop at the same seed.
func TestTenantMatchesHandWiredPipeline(t *testing.T) {
	spec := policy.DefaultSpec()
	want := baselineFingerprints(t, spec, testDays)

	tn, prints := newTestTenant(t, "parity", spec, Options{})
	for d := 1; d <= testDays; d++ {
		if err := tn.StepCycle(); err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
	}
	if len(*prints) != len(want) {
		t.Fatalf("tenant ran %d cycles, want %d", len(*prints), len(want))
	}
	for i := range want {
		if (*prints)[i] != want[i] {
			t.Fatalf("day %d: tenant decision diverged from hand-wired pipeline:\ntenant:\n%s\nbaseline:\n%s",
				i+1, (*prints)[i], want[i])
		}
	}
}

// alternateSpec is a structurally different valid policy (data-only,
// top-k selection, no execution plane) used as the reload target.
func alternateSpec() *policy.Spec {
	sp := policy.DefaultDataSpec(false)
	sp.Name = "alternate"
	sp.Selector = &policy.Component{Name: "top-k", Params: map[string]any{"k": float64(5)}}
	sp.Execution = nil
	return sp
}

// TestPushPolicyMatchesWatcherHotReload is the policy-over-the-wire
// parity test: a spec pushed through PushPolicy must produce decisions
// byte-identical to the same spec hot-reloaded through a policy.Watcher
// file edit, cycle for cycle, on identically seeded lakes.
func TestPushPolicyMatchesWatcherHotReload(t *testing.T) {
	const switchAfter = 3
	next := alternateSpec()

	// Lake A: file watcher, edited between day 3 and day 4.
	path := filepath.Join(t.TempDir(), "policy.json")
	writeSpecFile(t, path, policy.DefaultSpec())
	watcher, initial, err := policy.NewWatcher(path, policy.StubEnv())
	if err != nil {
		t.Fatal(err)
	}
	watched, watchedPrints := newTestTenant(t, "watched", initial, Options{
		PollPolicy: func() (*policy.Spec, bool, error) { return watcher.Poll() },
	})

	// Lake B: same seed, same initial spec, API push instead of file.
	pushed, pushedPrints := newTestTenant(t, "pushed", initial, Options{})

	for d := 1; d <= testDays; d++ {
		if d == switchAfter+1 {
			writeSpecFile(t, path, next)
			diff, err := pushed.PushPolicy(next)
			if err != nil {
				t.Fatalf("push: %v", err)
			}
			if len(diff) == 0 {
				t.Fatal("push reported no diff for a different spec")
			}
		}
		if err := watched.StepCycle(); err != nil {
			t.Fatalf("watched day %d: %v", d, err)
		}
		if err := pushed.StepCycle(); err != nil {
			t.Fatalf("pushed day %d: %v", d, err)
		}
	}

	if len(*watchedPrints) != testDays || len(*pushedPrints) != testDays {
		t.Fatalf("cycle counts: watched=%d pushed=%d, want %d", len(*watchedPrints), len(*pushedPrints), testDays)
	}
	for i := range *watchedPrints {
		if (*watchedPrints)[i] != (*pushedPrints)[i] {
			t.Fatalf("day %d: pushed decisions diverged from watcher hot reload:\nwatcher:\n%s\npush:\n%s",
				i+1, (*watchedPrints)[i], (*pushedPrints)[i])
		}
	}
	if _, name, _ := pushed.PolicyInfo(); name != "alternate" {
		t.Fatalf("pushed tenant runs %q after swap, want alternate", name)
	}
}

// TestPushPolicyRejectedKeepsOldSpec pins the rejected-edit contract:
// an invalid push returns the compile errors synchronously and the
// running pipeline keeps deciding exactly as if nothing happened.
func TestPushPolicyRejectedKeepsOldSpec(t *testing.T) {
	spec := policy.DefaultSpec()
	want := baselineFingerprints(t, spec, testDays)

	tn, prints := newTestTenant(t, "rejecting", spec, Options{})
	for d := 1; d <= testDays; d++ {
		if d == 3 {
			bad := &policy.Spec{
				Name:       "bad",
				Generators: []policy.Component{{Name: "no-such-generator"}},
			}
			_, err := tn.PushPolicy(bad)
			if err == nil {
				t.Fatal("invalid push accepted")
			}
			if !strings.Contains(err.Error(), "no-such-generator") {
				t.Fatalf("push error does not carry the compile problem: %v", err)
			}
		}
		if err := tn.StepCycle(); err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
	}
	for i := range want {
		if (*prints)[i] != want[i] {
			t.Fatalf("day %d: decisions changed after a rejected push", i+1)
		}
	}
	if _, name, _ := tn.PolicyInfo(); name != spec.Name {
		t.Fatalf("policy swapped to %q after rejected push", name)
	}
}

// TestManagerLifecycle drives created → running → paused → resumed →
// stopped through the manager and checks the terminal bookkeeping.
func TestManagerLifecycle(t *testing.T) {
	mgr := NewManager()
	tn, err := mgr.Create(Config{Name: "lc", Seed: 3, Days: 200, InitialTables: 10}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.State(); got != StateCreated {
		t.Fatalf("state after create = %v", got)
	}
	if err := mgr.Start(tn); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(tn); err == nil {
		t.Fatal("double start accepted")
	}
	// Pause, confirm the day counter stops advancing.
	waitFor(t, func() bool { return tn.Day() >= 2 })
	if err := tn.Pause(); err != nil {
		t.Fatal(err)
	}
	day := tn.Day()
	time.Sleep(20 * time.Millisecond)
	if d2 := tn.Day(); d2 > day+1 {
		t.Fatalf("paused tenant advanced from day %d to %d", day, d2)
	}
	if err := tn.Resume(); err != nil {
		t.Fatal(err)
	}
	tn.Stop()
	select {
	case <-tn.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop never completed")
	}
	if got := tn.State(); got != StateStopped {
		t.Fatalf("state after stop = %v", got)
	}
	if err := tn.StepCycle(); err == nil {
		t.Fatal("stopped tenant accepted a cycle")
	}
}

// TestManagerRunsToCompletion checks a managed tenant stops by itself
// after its configured days.
func TestManagerRunsToCompletion(t *testing.T) {
	mgr := NewManager()
	tn, err := mgr.Create(Config{Name: "short", Seed: 5, Days: 3, InitialTables: 10}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(tn); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tn.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("run never completed")
	}
	if tn.Day() != 3 {
		t.Fatalf("completed at day %d, want 3", tn.Day())
	}
	if err := tn.Err(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestManagerDuplicateName checks name uniqueness.
func TestManagerDuplicateName(t *testing.T) {
	mgr := NewManager()
	if _, err := mgr.Create(Config{Name: "dup", InitialTables: 5}, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(Config{Name: "dup", InitialTables: 5}, nil, Options{}); err == nil {
		t.Fatal("duplicate tenant name accepted")
	}
}

// TestConfigValidation exercises Config.normalize.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil, Options{}); err == nil {
		t.Fatal("nameless tenant accepted")
	}
	if _, err := New(Config{Name: "x", Days: -1}, nil, Options{}); err == nil {
		t.Fatal("negative days accepted")
	}
	if _, err := New(Config{Name: "x", DailyWriteProb: 2}, nil, Options{}); err == nil {
		t.Fatal("daily_write_prob > 1 accepted")
	}
}

// TestStateJSONRoundTrip pins the wire form of lifecycle states.
func TestStateJSONRoundTrip(t *testing.T) {
	for _, st := range []State{StateCreated, StateRunning, StatePaused, StateStopped} {
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Fatalf("state %v round-tripped to %v", st, back)
		}
	}
	var bad State
	if err := json.Unmarshal([]byte(`"exploded"`), &bad); err == nil {
		t.Fatal("unknown state accepted")
	}
}

// writeSpecFile marshals a spec to path (atomically enough for the
// watcher's content-hash check).
func writeSpecFile(t *testing.T, path string, sp *policy.Spec) {
	t.Helper()
	b, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to 30s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never reached")
}
