package tenant

import "autocomp/internal/telemetry"

// Management-plane metrics, all labeled by tenant so one /metrics
// endpoint serves every lake the daemon hosts without interleaving
// their counters (label isolation is pinned by the manager race test).
var (
	mTenants = telemetry.Default().Gauge(
		"autocomp_tenants",
		"Tenants registered in the management plane.")
	mTenantState = telemetry.Default().GaugeVec(
		"autocomp_tenant_state",
		"Tenant lifecycle state (0 created, 1 running, 2 paused, 3 stopped).",
		"tenant")
	mTenantCycles = telemetry.Default().CounterVec(
		"autocomp_tenant_cycles_total",
		"OODA cycles completed, by tenant.",
		"tenant")
	mTenantDay = telemetry.Default().GaugeVec(
		"autocomp_tenant_day",
		"Last completed simulation day, by tenant.",
		"tenant")
	mTenantFilesReduced = telemetry.Default().CounterVec(
		"autocomp_tenant_files_reduced_total",
		"Files removed by maintenance actions, by tenant.",
		"tenant")
	mTenantGBHrSpent = telemetry.Default().CounterVec(
		"autocomp_tenant_gbhr_spent_total",
		"Compute spend in GB-hours, by tenant.",
		"tenant")
	mTenantPolicyPushes = telemetry.Default().CounterVec(
		"autocomp_tenant_policy_pushes_total",
		"Policy pushes received over the management API, by tenant and outcome (accepted, rejected, swap-failed).",
		"tenant", "outcome")
	mTenantRuns = telemetry.Default().CounterVec(
		"autocomp_tenant_runs_total",
		"Scenario runs submitted, by tenant and outcome (done, failed, rejected).",
		"tenant", "status")
)
