package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"autocomp/internal/policy"
)

func persistCfg() Config {
	return Config{
		Name:                 "alpha",
		Seed:                 5,
		Days:                 10,
		InitialTables:        80,
		Databases:            4,
		WriterCommitsPerHour: 20,
	}
}

func durableSpec(root string) *policy.Spec {
	sp := policy.DefaultSpec()
	sp.Storage = &policy.StorageSpec{Backend: policy.StorageBackendLog, Root: root}
	return sp
}

func stepDays(t *testing.T, tn *Tenant, days int) {
	t.Helper()
	for i := 0; i < days; i++ {
		if err := tn.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPersistTenantRestartParity is the daemon-side recovery check: a
// tenant on the log backend, killed (abandoned) after 6 of 10 cycles
// and rebuilt from its persisted state, finishes the run with a fleet
// byte-identical to a tenant that ran all 10 cycles uninterrupted.
func TestPersistTenantRestartParity(t *testing.T) {
	cfg := persistCfg()

	clean, err := New(cfg, policy.DefaultSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepDays(t, clean, cfg.Days)

	root := t.TempDir()
	first, err := New(cfg, durableSpec(root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepDays(t, first, 6)
	// The kill: the process image is gone; only the store survives.

	second, err := New(cfg, durableSpec(root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Day() != 6 {
		t.Fatalf("restored tenant at day %d, want 6", second.Day())
	}
	stepDays(t, second, cfg.Days-6)

	want, got := clean.fleet.Snapshot(), second.fleet.Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored tenant's fleet diverged from the uninterrupted run\nwant RNG %+v day %d\ngot  RNG %+v day %d",
			want.RNG, want.Day, got.RNG, got.Day)
	}

	// The last cycle's decision must match too (same funnel, same
	// selections) — compare the final reports' selected candidate IDs.
	wantIDs, gotIDs := selectedIDs(clean), selectedIDs(second)
	if !reflect.DeepEqual(wantIDs, gotIDs) {
		t.Fatalf("final cycle selections diverged:\nwant %v\ngot  %v", wantIDs, gotIDs)
	}
}

func selectedIDs(tn *Tenant) []string {
	rep := tn.LastReport()
	if rep == nil {
		return nil
	}
	out := make([]string, 0, len(rep.Decision.Selected))
	for _, c := range rep.Decision.Selected {
		out = append(out, c.ID())
	}
	return out
}

// TestPersistTenantTornStateFile pins crash atomicity at the tenant
// layer: a half-written state file cannot exist (atomic rename), but a
// corrupted one must fail loudly rather than silently cold-starting.
func TestPersistTenantTornStateFile(t *testing.T) {
	root := t.TempDir()
	first, err := New(persistCfg(), durableSpec(root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepDays(t, first, 3)

	path := filepath.Join(root, "tenants", "alpha", "fleet.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(persistCfg(), durableSpec(root), Options{}); err == nil || !strings.Contains(err.Error(), "restore") {
		t.Fatalf("New on a corrupt state file = %v, want restore error", err)
	}
}

// TestPersistTenantConfigMismatch rejects restoring under a changed
// fleet topology instead of silently starting over.
func TestPersistTenantConfigMismatch(t *testing.T) {
	root := t.TempDir()
	first, err := New(persistCfg(), durableSpec(root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepDays(t, first, 2)

	cfg := persistCfg()
	cfg.InitialTables = 200
	if _, err := New(cfg, durableSpec(root), Options{}); err == nil || !strings.Contains(err.Error(), "different fleet config") {
		t.Fatalf("New with changed topology = %v, want config-mismatch error", err)
	}
}

// TestPersistTenantStateFileShape pins the on-disk schema the smoke
// script and operators rely on.
func TestPersistTenantStateFileShape(t *testing.T) {
	root := t.TempDir()
	tn, err := New(persistCfg(), durableSpec(root), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stepDays(t, tn, 1)
	b, err := os.ReadFile(filepath.Join(root, "tenants", "alpha", "fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st diskState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "alpha" || st.Day != 1 || st.Fleet == nil || len(st.Fleet.Tables) == 0 {
		t.Fatalf("state file shape: name=%q day=%d fleet=%v", st.Name, st.Day, st.Fleet != nil)
	}
}
