package tenant

import (
	"encoding/json"
	"testing"
	"time"

	"autocomp/internal/policy"
	"autocomp/internal/telemetry"
)

// soloEvents runs a tenant's cycles alone and returns its trace events
// normalized for comparison (WallMS is runtime noise, never identity).
func soloEvents(t *testing.T, cfg Config, spec *policy.Spec) []telemetry.CycleEvent {
	t.Helper()
	tn, err := New(cfg, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= cfg.Days; d++ {
		if err := tn.StepCycle(); err != nil {
			t.Fatalf("solo %s day %d: %v", cfg.Name, d, err)
		}
	}
	return normalizeEvents(tn.Tracer().Recent(cfg.Days))
}

func normalizeEvents(evs []telemetry.CycleEvent) []telemetry.CycleEvent {
	out := make([]telemetry.CycleEvent, len(evs))
	for i, ev := range evs {
		ev.WallMS = 0
		out[i] = ev
	}
	return out
}

// TestConcurrentTenantsAreIsolated is the manager's race test (run
// with -race in CI): two tenants with structurally different policy
// specs run concurrently, and each must produce a per-cycle trace
// byte-identical to running alone — neither tenant's RNG streams,
// pipeline state, or telemetry perturbs the other. Per-tenant labeled
// counters must likewise account each lake separately.
func TestConcurrentTenantsAreIsolated(t *testing.T) {
	cfgA := Config{Name: "iso-a", Seed: 21, Days: 5, InitialTables: 40}
	cfgB := Config{Name: "iso-b", Seed: 22, Days: 7, InitialTables: 25}
	specA := policy.DefaultSpec()
	specB := alternateSpec()

	// Ground truth: each tenant alone on a fresh lake. Different names
	// keep the labeled metrics of the solo runs out of the way.
	soloA := soloEvents(t, Config{Name: "solo-a", Seed: cfgA.Seed, Days: cfgA.Days, InitialTables: cfgA.InitialTables}, specA)
	soloB := soloEvents(t, Config{Name: "solo-b", Seed: cfgB.Seed, Days: cfgB.Days, InitialTables: cfgB.InitialTables}, specB)

	mgr := NewManager()
	a, err := mgr.Create(cfgA, specA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create(cfgB, specB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(b); err != nil {
		t.Fatal(err)
	}
	for _, tn := range []*Tenant{a, b} {
		select {
		case <-tn.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("tenant %s never finished", tn.Name())
		}
		if err := tn.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Shutdown(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// RNG / trace isolation: concurrent == solo, event for event. The
	// Tenant label differs by construction (solo runs used other names),
	// so clear it before comparing; everything else must be identical.
	gotA := normalizeEvents(a.Tracer().Recent(cfgA.Days))
	gotB := normalizeEvents(b.Tracer().Recent(cfgB.Days))
	compareEventStreams(t, "A", stripTenant(gotA), stripTenant(soloA))
	compareEventStreams(t, "B", stripTenant(gotB), stripTenant(soloB))

	// Label isolation: each tenant's cycles land only on its own label.
	if v, ok := telemetry.Default().Value("autocomp_tenant_cycles_total", "iso-a"); !ok || v != float64(cfgA.Days) {
		t.Fatalf("iso-a cycles metric = %v (ok=%v), want %d", v, ok, cfgA.Days)
	}
	if v, ok := telemetry.Default().Value("autocomp_tenant_cycles_total", "iso-b"); !ok || v != float64(cfgB.Days) {
		t.Fatalf("iso-b cycles metric = %v (ok=%v), want %d", v, ok, cfgB.Days)
	}
	if v, ok := telemetry.Default().Value("autocomp_tenant_day", "iso-a"); !ok || v != float64(cfgA.Days) {
		t.Fatalf("iso-a day gauge = %v (ok=%v), want %d", v, ok, cfgA.Days)
	}

	// Trace events carry their tenant's name, nobody else's.
	for _, ev := range gotA {
		if ev.Tenant != "iso-a" {
			t.Fatalf("tenant A event labeled %q", ev.Tenant)
		}
	}
	for _, ev := range gotB {
		if ev.Tenant != "iso-b" {
			t.Fatalf("tenant B event labeled %q", ev.Tenant)
		}
	}
}

func stripTenant(evs []telemetry.CycleEvent) []telemetry.CycleEvent {
	out := make([]telemetry.CycleEvent, len(evs))
	for i, ev := range evs {
		ev.Tenant = ""
		out[i] = ev
	}
	return out
}

// compareEventStreams asserts two normalized traces are identical,
// comparing JSON so a mismatch prints the exact field.
func compareEventStreams(t *testing.T, label string, got, want []telemetry.CycleEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tenant %s: %d events, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Fatalf("tenant %s day %d diverged under concurrency:\ngot:  %s\nwant: %s", label, i+1, g, w)
		}
	}
}
