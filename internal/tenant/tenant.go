// Package tenant is AutoComp's multi-tenant serving layer: it bundles a
// named lake (fleet substrate + spec-compiled pipeline + per-tenant
// policy source + isolated RNG seed) behind a lifecycle state machine,
// and a Manager that hosts many such tenants in one daemon, running
// each tenant's OODA cycles concurrently.
//
// The paper's deployment (§7) is AutoComp as a shared service over many
// independent LinkedIn lakes — one daemon, many tenants, each with its
// own policy and budget. A Tenant is one such lake: its fleet draws
// every random stream from its own seed (sim.Child derivation), its
// pipeline compiles from its own policy.Spec, and its decision trace
// flows to its own telemetry.Tracer under its own `tenant` label — so
// tenants are deterministic in isolation and unperturbed by neighbours
// (pinned by the manager race tests).
//
// Policy changes arrive two ways, with identical semantics: a file
// watcher polled between cycles (the daemon's -policy flag) or a push
// over the management API (internal/server). Both validate first,
// report rejected edits without disturbing the running pipeline, and
// swap atomically at a cycle boundary — never mid-cycle.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"autocomp/internal/core"
	"autocomp/internal/fleet"
	"autocomp/internal/lstlog"
	"autocomp/internal/policy"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
	"autocomp/internal/telemetry"
)

// State is a tenant's lifecycle position: created → running ⇄ paused →
// stopped. Stopped is terminal (a tenant whose cycle failed stops with
// Err set).
type State int32

// Lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StatePaused
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON parses a state name (the MarshalJSON form), so API
// clients can decode snapshots.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, st := range []State{StateCreated, StateRunning, StatePaused, StateStopped} {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("tenant: unknown state %q", name)
}

// Config declares one tenant's lake: its identity, its isolated RNG
// seed, its fleet topology, and how many OODA cycles it runs. Zero
// topology fields inherit the fleet substrate's defaults
// (fleet.DefaultConfig), so a minimal config is {"name": "x"}.
type Config struct {
	// Name identifies the tenant; it labels every metric and trace event
	// the tenant emits and keys the management API routes.
	Name string `json:"name"`
	// Seed drives every random stream of this tenant's lake. Each tenant
	// derives its own child streams from its own seed, so tenants never
	// share (or perturb) each other's draws. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Days is how many observe→decide→act cycles the tenant runs before
	// stopping (default 14, one cycle per simulated day).
	Days int `json:"days,omitempty"`

	// Fleet topology (zero values inherit fleet.DefaultConfig).
	InitialTables     int     `json:"initial_tables,omitempty"`
	Databases         int     `json:"databases,omitempty"`
	QuotaObjectsPerDB int64   `json:"quota_objects_per_db,omitempty"`
	TablesPerMonth    int     `json:"tables_per_month,omitempty"`
	DailyWriteProb    float64 `json:"daily_write_prob,omitempty"`
	DailyDriftProb    float64 `json:"daily_drift_prob,omitempty"`

	// WriterCommitsPerHour races live writers against the compactor
	// during execution windows (0 = quiet lake).
	WriterCommitsPerHour float64 `json:"writer_commits_per_hour,omitempty"`
	// BudgetTBHr, when positive, overrides the policy spec's selector
	// with a per-cycle compute budget of this many TBHr — the tenant's
	// budget knob, applied to whatever spec the tenant runs.
	BudgetTBHr float64 `json:"budget_tbhr,omitempty"`
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Name == "" {
		return errors.New("tenant: name is required")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Days == 0 {
		c.Days = 14
	}
	if c.Days < 1 {
		return fmt.Errorf("tenant %s: days must be >= 1, got %d", c.Name, c.Days)
	}
	if c.InitialTables < 0 || c.Databases < 0 || c.TablesPerMonth < 0 {
		return fmt.Errorf("tenant %s: fleet topology fields must be >= 0", c.Name)
	}
	if c.DailyWriteProb < 0 || c.DailyWriteProb > 1 {
		return fmt.Errorf("tenant %s: daily_write_prob must be in [0,1], got %v", c.Name, c.DailyWriteProb)
	}
	return nil
}

// fleetConfig maps the tenant topology onto the substrate's config,
// inheriting the production-shaped defaults where the tenant is silent.
func (c *Config) fleetConfig() fleet.Config {
	fc := fleet.DefaultConfig()
	fc.Seed = c.Seed
	if c.InitialTables > 0 {
		fc.InitialTables = c.InitialTables
	}
	if c.Databases > 0 {
		fc.Databases = c.Databases
	}
	if c.QuotaObjectsPerDB != 0 {
		fc.QuotaObjectsPerDB = c.QuotaObjectsPerDB
	}
	if c.TablesPerMonth != 0 {
		fc.TablesPerMonth = c.TablesPerMonth
	}
	fc.DailyWriteProb = c.DailyWriteProb
	if c.DailyDriftProb > 0 {
		fc.DailyDriftProb = c.DailyDriftProb
	}
	return fc
}

// Options carries host-side wiring a tenant cannot declare about
// itself: where its trace stream goes and how the host observes it.
type Options struct {
	// Tracer receives the tenant's CycleEvents (nil = a fresh private
	// tracer). The daemon hands its default tenant the process-wide
	// tracer so -trace and /statusz keep their pre-tenant meaning.
	Tracer *telemetry.Tracer
	// PollPolicy, when set, is consulted at every cycle boundary — the
	// file-watcher hook (policy.Watcher.Poll plus any host-side flag
	// overrides). It returns (spec, changed, err); errors are reported
	// through Logf and the running policy stays in force, mirroring the
	// daemon's hot-reload semantics.
	PollPolicy func() (*policy.Spec, bool, error)
	// Provenance names where the initial spec came from ("flags",
	// "file:<path>", "api", ...), shown by GET /policy.
	Provenance string
	// OnCycle, when set, observes each completed cycle: the trace event
	// (the daemon's per-cycle log line) and the raw report (parity tests
	// fingerprint rep.Decision).
	OnCycle func(ev telemetry.CycleEvent, rep *core.Report)
	// Logf, when set, receives operational messages (policy reloads and
	// rejections). Nil discards them.
	Logf func(format string, args ...any)
}

// Tenant is one lake hosted by the daemon: fleet substrate, compiled
// pipeline, policy source, lifecycle state, and scenario runs. All
// exported methods are safe for concurrent use; cycle execution is
// serialized under the tenant's lock, so a policy push or a status read
// never observes a half-run cycle.
type Tenant struct {
	cfg   Config
	model fleet.CompactionModel

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	stopRq bool
	day    int
	err    error

	fleet *fleet.Fleet
	svc   *fleet.SpecService
	// store is the tenant's durable backend, nil under the in-memory
	// backend. Resolved from the compiled policy's storage section at
	// every swap; when set, each completed cycle persists the lake and
	// New restores it.
	store      *lstlog.Store
	lastRep    *core.Report
	spec       *policy.Spec
	provenance string
	pending    *policy.Spec // staged policy push, swapped at the next boundary
	pendingPv  string
	policyErr  string // last rejected reload/push, deduped

	tracer *telemetry.Tracer
	opts   Options

	runs    map[string]*Run
	runIDs  []string
	nextRun int

	done chan struct{}
}

// New builds a tenant at day 0: its fleet from the config's seed and
// topology, its pipeline from spec (cloned; nil means
// policy.DefaultSpec), with the config's budget override applied.
func New(cfg Config, spec *policy.Spec, opts Options) (*Tenant, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if spec == nil {
		spec = policy.DefaultSpec()
	} else {
		spec = spec.Clone()
	}
	if cfg.BudgetTBHr > 0 {
		spec.Selector = &policy.Component{
			Name:   "budget",
			Params: map[string]any{"budget_gbhr": cfg.BudgetTBHr * 1024},
		}
	}
	t := &Tenant{
		cfg:    cfg,
		model:  fleet.DefaultModel(512 * storage.MB),
		tracer: opts.Tracer,
		opts:   opts,
		runs:   make(map[string]*Run),
		done:   make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	if t.tracer == nil {
		t.tracer = telemetry.NewTracer(telemetry.DefaultTraceDepth)
	}
	t.fleet = fleet.New(cfg.fleetConfig(), sim.NewClock())
	t.provenance = opts.Provenance
	if t.provenance == "" {
		t.provenance = "config"
	}
	if err := t.setPolicyLocked(spec, t.provenance); err != nil {
		return nil, err
	}
	// Cold-start recovery: when the policy names a durable backend and
	// the store holds this tenant's state, rebuild the lake from it (and
	// recompile the pipeline against the restored substrate) instead of
	// simulating a fresh one. Compilation consumes no RNG draws, so the
	// restored tenant's next cycle is byte-identical to the cycle an
	// uninterrupted tenant would have run.
	if t.store != nil {
		restored, day, err := t.loadPersisted()
		if err != nil {
			return nil, err
		}
		if restored != nil {
			t.fleet = restored
			t.day = day
			if err := t.setPolicyLocked(spec, t.provenance); err != nil {
				return nil, err
			}
		}
	}
	mTenants.Add(1)
	mTenantState.With(cfg.Name).Set(float64(StateCreated))
	return t, nil
}

// Name returns the tenant's identity.
func (t *Tenant) Name() string { return t.cfg.Name }

// Config returns the tenant's (normalized) configuration.
func (t *Tenant) Config() Config { return t.cfg }

// Tracer returns the tenant's decision-trace stream.
func (t *Tenant) Tracer() *telemetry.Tracer { return t.tracer }

// Service returns the tenant's compiled pipeline for read-only
// inspection (plane layout at startup). Callers must not run cycles on
// it — StepCycle owns execution.
func (t *Tenant) Service() *fleet.SpecService {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.svc
}

// Done is closed when the tenant reaches a terminal state under a
// manager (completed its days, failed, or was stopped).
func (t *Tenant) Done() <-chan struct{} { return t.done }

// State returns the lifecycle state.
func (t *Tenant) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Day returns the last completed simulation day.
func (t *Tenant) Day() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.day
}

// Err returns the error that stopped the tenant, if any.
func (t *Tenant) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// LastReport returns the most recent cycle's report (nil before the
// first cycle) — how tests fingerprint decisions of tenants created
// through the API, where no OnCycle hook can be installed.
func (t *Tenant) LastReport() *core.Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastRep
}

// policyEnv is the validation environment for this tenant's pushes and
// reloads: the cost-model constants without the live clock, so
// validation is safe while a cycle holds the tenant lock.
func (t *Tenant) policyEnv() policy.Env {
	return policy.Env{
		TargetFileSize:      t.model.TargetFileSize,
		ExecutorMemoryGB:    t.model.ExecutorMemoryGB,
		RewriteBytesPerHour: t.model.RewriteBytesPerHour,
	}
}

// setPolicyLocked compiles sp against the fleet and swaps the running
// pipeline. Callers hold t.mu (or own the tenant exclusively).
func (t *Tenant) setPolicyLocked(sp *policy.Spec, provenance string) error {
	svc, err := t.fleet.ServiceFromSpec(sp, t.model, fleet.SpecRunOptions{
		WriterCommitsPerHour: t.cfg.WriterCommitsPerHour,
		Tenant:               t.cfg.Name,
		Tracer:               t.tracer,
	})
	if err != nil {
		return err
	}
	t.svc = svc
	t.spec = sp
	t.provenance = provenance
	return t.resolveStoreLocked()
}

// PushPolicy validates sp and stages it for an atomic swap at the next
// cycle boundary — the over-the-wire twin of the file watcher's hot
// reload. It returns the field-wise diff against the currently staged
// policy. A spec that fails validation is rejected whole: the error
// carries every compile problem and the running pipeline is untouched.
func (t *Tenant) PushPolicy(sp *policy.Spec) ([]string, error) {
	if sp == nil {
		return nil, errors.New("tenant: nil policy spec")
	}
	sp = sp.Clone()
	if err := policy.Validate(sp, t.policyEnv()); err != nil {
		mTenantPolicyPushes.With(t.cfg.Name, "rejected").Inc()
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.spec
	if t.pending != nil {
		base = t.pending
	}
	diff := policy.Diff(base, sp)
	t.pending = sp
	t.pendingPv = "api"
	mTenantPolicyPushes.With(t.cfg.Name, "accepted").Inc()
	return diff, nil
}

// PolicyInfo returns the running spec (the staged push if one is
// waiting for its boundary), its name, and its provenance.
func (t *Tenant) PolicyInfo() (spec *policy.Spec, name, provenance string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, pv := t.spec, t.provenance
	if t.pending != nil {
		sp, pv = t.pending, t.pendingPv+" (staged)"
	}
	return sp.Clone(), specName(sp), pv
}

// StepCycle runs one OODA cycle: poll the policy file, apply a staged
// push (cycle boundary — the only place the pipeline ever swaps),
// advance the fleet one day, run observe→decide→act, and refresh the
// tenant's served snapshot and labeled telemetry.
func (t *Tenant) StepCycle() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == StateStopped {
		return fmt.Errorf("tenant %s: stopped", t.cfg.Name)
	}
	t.pollPolicyLocked()
	if t.pending != nil {
		sp, pv := t.pending, t.pendingPv
		t.pending, t.pendingPv = nil, ""
		if err := t.setPolicyLocked(sp, pv); err != nil {
			// Validation passed but compilation against the live fleet did
			// not: report once, keep the running policy.
			t.reportPolicyErr("policy: swap rejected: %v (keeping %s)", err, specName(t.spec))
			mTenantPolicyPushes.With(t.cfg.Name, "swap-failed").Inc()
		} else {
			t.policyErr = ""
			t.logf("policy: %s now running %s (%s)", t.cfg.Name, specName(sp), pv)
		}
	}
	t.fleet.AdvanceDay()
	rep, _, err := t.svc.RunCycle()
	if err != nil {
		return fmt.Errorf("tenant %s: day %d cycle: %w", t.cfg.Name, t.day+1, err)
	}
	t.day++
	t.lastRep = rep
	if err := t.persistLocked(); err != nil {
		return err
	}
	mTenantCycles.With(t.cfg.Name).Inc()
	mTenantDay.With(t.cfg.Name).Set(float64(t.day))
	mTenantFilesReduced.With(t.cfg.Name).Add(float64(rep.FilesReduced))
	mTenantGBHrSpent.With(t.cfg.Name).Add(rep.ActualGBHr)
	if t.opts.OnCycle != nil {
		if ev, ok := t.tracer.Last(); ok {
			t.opts.OnCycle(ev, rep)
		}
	}
	return nil
}

// pollPolicyLocked consults the tenant's policy file source, staging a
// changed valid spec and reporting (once) a bad revision.
func (t *Tenant) pollPolicyLocked() {
	if t.opts.PollPolicy == nil {
		return
	}
	sp, changed, err := t.opts.PollPolicy()
	switch {
	case err != nil:
		t.reportPolicyErr("policy: reload rejected: %v (keeping %s)", err, specName(t.spec))
	case changed:
		t.pending = sp
		t.pendingPv = "file"
		t.policyErr = ""
	}
}

// reportPolicyErr logs a policy failure, deduplicating repeats.
func (t *Tenant) reportPolicyErr(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if msg == t.policyErr {
		return
	}
	t.policyErr = msg
	t.logf("%s", msg)
}

// LastPolicyError returns the most recent policy reload/swap failure
// ("" when the last attempt succeeded).
func (t *Tenant) LastPolicyError() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.policyErr
}

func (t *Tenant) logf(format string, args ...any) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

// Pause suspends cycle execution at the next boundary (no-op unless
// running).
func (t *Tenant) Pause() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateRunning {
		return fmt.Errorf("tenant %s: cannot pause from %s", t.cfg.Name, t.state)
	}
	t.setStateLocked(StatePaused)
	return nil
}

// Resume continues a paused tenant.
func (t *Tenant) Resume() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StatePaused {
		return fmt.Errorf("tenant %s: cannot resume from %s", t.cfg.Name, t.state)
	}
	t.setStateLocked(StateRunning)
	return nil
}

// Stop requests a permanent stop at the next cycle boundary. Safe from
// any state; idempotent.
func (t *Tenant) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopRq = true
	t.cond.Broadcast()
}

// setStateLocked transitions state, updating the gauge and waking the
// run loop.
func (t *Tenant) setStateLocked(s State) {
	t.state = s
	mTenantState.With(t.cfg.Name).Set(float64(s))
	t.cond.Broadcast()
}

func specName(sp *policy.Spec) string {
	if sp == nil || sp.Name == "" {
		return "(unnamed)"
	}
	return sp.Name
}
