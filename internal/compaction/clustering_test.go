package compaction

import (
	"testing"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

// Tests for the §8 layout-optimization extension: clustering rewrites.

func clusteringSetup(t *testing.T, clusterData bool) (*Executor, *lst.Table) {
	t.Helper()
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	tbl, err := lst.NewTable(lst.TableConfig{Database: "db", Name: "t"}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{
		Cluster:        cluster.New(cluster.CompactionClusterConfig(), clock),
		TargetFileSize: 512 * mb,
		ClusterData:    clusterData,
	}
	return ex, tbl
}

func TestClusteringRewriteMarksOutputs(t *testing.T) {
	ex, tbl := clusteringSetup(t, true)
	specs := make([]lst.FileSpec, 12)
	for i := range specs {
		specs[i] = lst.FileSpec{SizeBytes: 20 * mb, RowCount: 100}
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		t.Fatal(err)
	}
	res := ex.CompactTable(tbl)
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	for _, f := range tbl.LiveFiles() {
		if !f.Clustered {
			t.Fatalf("output %s not clustered", f.Path)
		}
	}
}

func TestClusteringCostsMoreThanPlainCompaction(t *testing.T) {
	load := func(tbl *lst.Table) {
		specs := make([]lst.FileSpec, 12)
		for i := range specs {
			specs[i] = lst.FileSpec{SizeBytes: 40 * mb, RowCount: 100}
		}
		if _, err := tbl.AppendFiles(specs); err != nil {
			t.Fatal(err)
		}
	}
	plainEx, plainTbl := clusteringSetup(t, false)
	load(plainTbl)
	plain := plainEx.CompactTable(plainTbl)

	zEx, zTbl := clusteringSetup(t, true)
	load(zTbl)
	z := zEx.CompactTable(zTbl)

	if !plain.Succeeded() || !z.Succeeded() {
		t.Fatalf("results: %+v / %+v", plain, z)
	}
	if z.GBHr <= plain.GBHr {
		t.Fatalf("clustering not costed: %.4f vs %.4f GBHr", z.GBHr, plain.GBHr)
	}
	// Same layout outcome aside from clustering.
	if z.Reduction() != plain.Reduction() {
		t.Fatalf("reductions differ: %d vs %d", z.Reduction(), plain.Reduction())
	}
	for _, f := range plainTbl.LiveFiles() {
		if f.Clustered {
			t.Fatal("plain compaction produced clustered files")
		}
	}
}

func TestSortCostFactorHonored(t *testing.T) {
	mk := func(factor float64) float64 {
		ex, tbl := clusteringSetup(t, true)
		ex.SortCostFactor = factor
		specs := make([]lst.FileSpec, 12)
		for i := range specs {
			specs[i] = lst.FileSpec{SizeBytes: 40 * mb, RowCount: 100}
		}
		tbl.AppendFiles(specs)
		return ex.CompactTable(tbl).GBHr
	}
	if mk(2.0) <= mk(0.25) {
		t.Fatal("sort cost factor ignored")
	}
}
