package compaction

import (
	"errors"
	"time"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
)

// Scope selects what a single compaction operation covers.
type Scope int

// Scopes.
const (
	// TableScope compacts every partition of the table in one commit
	// (compaction never merges across partition boundaries, §7).
	TableScope Scope = iota
	// PartitionScope compacts a single partition in one commit.
	PartitionScope
)

// Result reports one compaction operation.
type Result struct {
	Table     string
	Partition string // "" for table scope
	Scope     Scope

	// Skipped is true when there was nothing worth rewriting.
	Skipped bool
	// Conflict is true when at least one rewrite commit failed
	// optimistic validation — the paper's "cluster-side conflict"
	// (Table 1). A rewrite commits one file group per partition
	// (Iceberg's partial progress), so a table-scope operation can
	// partially succeed: ConflictCount tallies the failed groups.
	Conflict      bool
	ConflictCount int
	Err           error

	// FilesRemoved/FilesAdded/BytesRewritten cover the committed groups
	// only (conflicted groups change nothing).
	FilesRemoved   int
	FilesAdded     int
	BytesRewritten int64

	// Duration and GBHr are the job's execution time and compute cost;
	// they are charged even when commits conflict (wasted work).
	Duration time.Duration
	GBHr     float64
}

// Reduction returns the net file-count reduction achieved.
func (r Result) Reduction() int { return r.FilesRemoved - r.FilesAdded }

// Succeeded reports whether the operation rewrote files and committed
// all of its file groups.
func (r Result) Succeeded() bool { return !r.Skipped && !r.Conflict && r.Err == nil }

// Executor runs compaction jobs on a cluster.
type Executor struct {
	// Cluster is where rewrite jobs run (the paper offloads compaction
	// to a dedicated 1+3-node cluster, §6).
	Cluster *cluster.Cluster
	// TargetFileSize is the rewrite target (512 MB in the paper).
	TargetFileSize int64
	// SmallFileThreshold selects rewrite inputs; zero means the target.
	SmallFileThreshold int64
	// AppPrefix labels cluster jobs ("compaction/" + table[/partition]).
	AppPrefix string
	// ClusterData extends compaction into layout optimization (§8,
	// "Automatic Data Layout Optimization"): outputs are written under a
	// Z-order/V-order-style clustering. The rewrite pays an extra sort
	// pass (SortCostFactor × the data volume) and in exchange produces
	// Clustered files whose column statistics enable data skipping on
	// selective scans.
	ClusterData bool
	// SortCostFactor is the extra compute of the clustering pass as a
	// fraction of the rewrite volume (default 0.5 when ClusterData).
	SortCostFactor float64
}

func (e *Executor) threshold() int64 {
	if e.SmallFileThreshold > 0 {
		return e.SmallFileThreshold
	}
	return e.TargetFileSize
}

// Op is an in-flight compaction: the rewrite transaction is open and the
// job has been submitted; Finish commits at the job's end time. Splitting
// start and finish lets a discrete-event simulation interleave workload
// commits with the compaction window, producing exactly the write-write
// conflicts the paper measures in Table 1.
type Op struct {
	exec      *Executor
	table     *lst.Table
	groups    []partGroup
	result    Result
	job       cluster.JobRecord
	hasWork   bool
	committed bool
}

// partGroup is one partition's staged rewrite, committed independently
// (Iceberg partial-progress file groups). The input files are fixed at
// planning time; the commit transaction is built fresh at commit time
// (refresh-and-retry semantics), so a group fails exactly when its staged
// files went stale — removed by a concurrent writer during the rewrite
// window, the paper's "conflicts about stale metadata" (§6.2).
type partGroup struct {
	partition string
	removes   []lst.DataFile
	adds      []lst.FileSpec
	inputs    int
	outputs   int
	bytes     int64
}

// CommitAt returns the virtual time at which the rewrite job completes
// and its commit is attempted.
func (o *Op) CommitAt() time.Duration { return o.job.End() }

// Result returns the operation's result so far; before Finish it reflects
// planning (and Skipped) state only.
func (o *Op) Result() Result { return o.result }

// Start plans and launches one compaction operation. For PartitionScope,
// partition names the target partition; for TableScope it is ignored.
func (e *Executor) Start(t *lst.Table, scope Scope, partition string) *Op {
	var partitions []string
	if scope == PartitionScope {
		partitions = []string{partition}
	} else {
		partition = ""
		partitions = t.Partitions()
	}
	byPart := make(map[string][]lst.DataFile, len(partitions))
	for _, part := range partitions {
		byPart[part] = t.FilesInPartition(part)
	}
	return e.startPlan(t, scope, partition, partitions, byPart)
}

// StartFiles plans and launches a compaction restricted to the given file
// set (snapshot-scope work units): files are grouped by partition and
// bin-packed within each, in a single rewrite commit.
func (e *Executor) StartFiles(t *lst.Table, files []lst.DataFile) *Op {
	byPart := map[string][]lst.DataFile{}
	var partitions []string
	for _, f := range files {
		if _, ok := byPart[f.Partition]; !ok {
			partitions = append(partitions, f.Partition)
		}
		byPart[f.Partition] = append(byPart[f.Partition], f)
	}
	return e.startPlan(t, TableScope, "", partitions, byPart)
}

// startPlan builds the rewrite transaction for the per-partition file
// sets and submits the job; compaction never crosses partitions.
func (e *Executor) startPlan(t *lst.Table, scope Scope, partition string, partitions []string, byPart map[string][]lst.DataFile) *Op {
	op := &Op{
		exec:  e,
		table: t,
		result: Result{
			Table:     t.FullName(),
			Partition: partition,
			Scope:     scope,
		},
	}

	var totalInputs, totalOutputs int
	var totalBytes int64
	for _, part := range partitions {
		small := SelectSmall(byPart[part], e.threshold())
		plan := PlanBinPack(small, e.TargetFileSize)
		if plan.InputFiles == 0 || plan.InputFiles <= plan.OutputFiles() {
			continue
		}
		pg := partGroup{partition: part}
		for _, g := range plan.Groups {
			pg.removes = append(pg.removes, g.Files...)
			pg.adds = append(pg.adds, lst.FileSpec{
				Partition: part,
				SizeBytes: g.Bytes,
				RowCount:  g.Rows,
				Clustered: e.ClusterData,
			})
			pg.outputs++
		}
		pg.inputs = plan.InputFiles
		pg.bytes = plan.InputBytes
		op.groups = append(op.groups, pg)
		totalInputs += plan.InputFiles
		totalOutputs += pg.outputs
		totalBytes += plan.InputBytes
	}

	if totalInputs == 0 || totalInputs <= totalOutputs {
		op.result.Skipped = true
		return op
	}
	op.hasWork = true
	op.result.FilesRemoved = totalInputs
	op.result.FilesAdded = totalOutputs
	op.result.BytesRewritten = totalBytes

	app := e.AppPrefix + t.FullName()
	if scope == PartitionScope && partition != "" {
		app += "/" + partition
	}
	// Rewrites parallelize across input files (each task reads a file
	// group and feeds the packed writers). Clustering adds a sort pass
	// over the rewrite volume.
	scan := totalBytes
	if e.ClusterData {
		factor := e.SortCostFactor
		if factor <= 0 {
			factor = 0.5
		}
		scan += int64(float64(totalBytes) * factor)
	}
	op.job = e.Cluster.Submit(cluster.JobSpec{
		App:        app,
		ScanBytes:  scan,
		WriteBytes: totalBytes,
		Files:      totalInputs,
		Tasks:      totalInputs,
	})
	op.result.Duration = op.job.Duration
	op.result.GBHr = op.job.GBHr
	return op
}

// Finish attempts the rewrite commits, one file group per partition
// (partial progress). Call it at (or after) CommitAt in simulated time.
// Groups whose validation fails report cluster-side conflicts and change
// nothing; the rest land. The job's GBHr remains charged in full even for
// conflicted groups (wasted compute, §2).
func (o *Op) Finish() Result {
	if o.committed || !o.hasWork {
		o.result.Skipped = o.result.Skipped || !o.hasWork
		return o.result
	}
	o.committed = true
	o.result.FilesRemoved = 0
	o.result.FilesAdded = 0
	o.result.BytesRewritten = 0
	for _, pg := range o.groups {
		tx := o.table.NewTransaction(lst.OpRewrite)
		for _, f := range pg.removes {
			tx.Remove(f.Path, f.Partition)
		}
		for _, spec := range pg.adds {
			tx.Add(spec)
		}
		if _, err := tx.Commit(); err != nil {
			if errors.Is(err, lst.ErrCommitConflict) {
				o.result.Conflict = true
				o.result.ConflictCount++
			} else {
				o.result.Err = err
			}
			continue
		}
		o.result.FilesRemoved += pg.inputs
		o.result.FilesAdded += pg.outputs
		o.result.BytesRewritten += pg.bytes
	}
	return o.result
}

// Compact runs Start and Finish back to back: a compaction with no
// concurrent writers interleaved (no conflict window).
func (e *Executor) Compact(t *lst.Table, scope Scope, partition string) Result {
	op := e.Start(t, scope, partition)
	return op.Finish()
}

// CompactTable compacts the whole table in one commit.
func (e *Executor) CompactTable(t *lst.Table) Result {
	return e.Compact(t, TableScope, "")
}

// CompactPartition compacts one partition in one commit.
func (e *Executor) CompactPartition(t *lst.Table, partition string) Result {
	return e.Compact(t, PartitionScope, partition)
}

// CompactFiles compacts only the given files (grouped by partition) in
// one commit, with no interleaving window.
func (e *Executor) CompactFiles(t *lst.Table, files []lst.DataFile) Result {
	return e.StartFiles(t, files).Finish()
}
