package compaction

import (
	"testing"
	"testing/quick"

	"autocomp/internal/cluster"
	"autocomp/internal/lst"
	"autocomp/internal/sim"
	"autocomp/internal/storage"
)

const mb = storage.MB

func mkFiles(sizes ...int64) []lst.DataFile {
	out := make([]lst.DataFile, len(sizes))
	for i, s := range sizes {
		out[i] = lst.DataFile{
			Path:      "/db/t/data/p/" + itoa(i) + ".parquet",
			SizeBytes: s,
			RowCount:  s / 100,
		}
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestPlanBinPackMergesSmallFiles(t *testing.T) {
	files := mkFiles(100*mb, 100*mb, 100*mb, 100*mb, 100*mb)
	plan := PlanBinPack(files, 512*mb)
	if plan.OutputFiles() != 1 {
		t.Fatalf("outputs = %d, want 1", plan.OutputFiles())
	}
	if plan.InputFiles != 5 {
		t.Fatalf("inputs = %d", plan.InputFiles)
	}
	if plan.Reduction() != 4 {
		t.Fatalf("reduction = %d", plan.Reduction())
	}
	if plan.Groups[0].Bytes != 500*mb {
		t.Fatalf("group bytes = %d", plan.Groups[0].Bytes)
	}
}

func TestPlanBinPackRespectsTarget(t *testing.T) {
	files := mkFiles(300*mb, 300*mb, 300*mb)
	plan := PlanBinPack(files, 512*mb)
	for _, g := range plan.Groups {
		if g.Bytes > 512*mb {
			t.Fatalf("group exceeds target: %d", g.Bytes)
		}
	}
}

func TestPlanBinPackDropsSingletons(t *testing.T) {
	// Two files that cannot pack together: each is its own bin, both
	// dropped as useless rewrites.
	files := mkFiles(400*mb, 400*mb)
	plan := PlanBinPack(files, 512*mb)
	if plan.OutputFiles() != 0 || plan.InputFiles != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPlanBinPackKeepsDeltaSingletons(t *testing.T) {
	files := []lst.DataFile{{Path: "/d", SizeBytes: 400 * mb, RowCount: 1, IsDelta: true}}
	plan := PlanBinPack(files, 512*mb)
	if plan.OutputFiles() != 1 {
		t.Fatalf("delta singleton dropped: %+v", plan)
	}
}

func TestPlanBinPackDeterministic(t *testing.T) {
	files := mkFiles(100*mb, 100*mb, 200*mb, 50*mb, 150*mb, 60*mb)
	a := PlanBinPack(files, 512*mb)
	// Same inputs in a different order must produce the same plan.
	rev := make([]lst.DataFile, len(files))
	for i, f := range files {
		rev[len(files)-1-i] = f
	}
	b := PlanBinPack(rev, 512*mb)
	if a.OutputFiles() != b.OutputFiles() || a.InputFiles != b.InputFiles {
		t.Fatalf("plans differ: %+v vs %+v", a, b)
	}
	for i := range a.Groups {
		if a.Groups[i].Bytes != b.Groups[i].Bytes {
			t.Fatalf("group %d bytes differ", i)
		}
	}
}

func TestPlanBinPackZeroTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for target 0")
		}
	}()
	PlanBinPack(nil, 0)
}

// Property: bin packing conserves bytes and never exceeds the target per
// group (inputs are always < target).
func TestBinPackConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const target = 512 * int64(1<<20)
		var files []lst.DataFile
		var inBytes int64
		for i, r := range raw {
			size := (int64(r) + 1) * (mb / 4) // up to ~16GB/4 = fits under?
			size = size % (target - 1)
			if size == 0 {
				size = 1
			}
			files = append(files, lst.DataFile{Path: "/f" + itoa(i), SizeBytes: size, RowCount: 1})
			inBytes += size
		}
		plan := PlanBinPack(files, target)
		var outBytes int64
		var inFiles int
		for _, g := range plan.Groups {
			if g.Bytes > target {
				return false
			}
			var sum int64
			for _, f := range g.Files {
				sum += f.SizeBytes
			}
			if sum != g.Bytes {
				return false
			}
			outBytes += g.Bytes
			inFiles += len(g.Files)
		}
		// Bytes in kept groups equal plan.InputBytes; counts match.
		return outBytes == plan.InputBytes && inFiles == plan.InputFiles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSmall(t *testing.T) {
	files := []lst.DataFile{
		{Path: "/a", SizeBytes: 10 * mb},
		{Path: "/b", SizeBytes: 600 * mb},
		{Path: "/c", SizeBytes: 700 * mb, IsDelta: true},
	}
	got := SelectSmall(files, 512*mb)
	if len(got) != 2 {
		t.Fatalf("selected = %d", len(got))
	}
}

func TestEstimateReduction(t *testing.T) {
	files := mkFiles(10*mb, 20*mb, 600*mb)
	if got := EstimateReduction(files, 512*mb); got != 2 {
		t.Fatalf("estimate = %d", got)
	}
}

// --- executor tests ---

func execSetup(t *testing.T, strict bool) (*Executor, *lst.Table, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	tbl, err := lst.NewTable(lst.TableConfig{
		Database: "db", Name: "t",
		Spec:                   lst.PartitionSpec{Column: "d", Transform: lst.TransformMonth},
		StrictRewriteConflicts: strict,
	}, fs, clock)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{
		Cluster:        cluster.New(cluster.CompactionClusterConfig(), clock),
		TargetFileSize: 512 * mb,
		AppPrefix:      "compaction/",
	}
	return ex, tbl, clock
}

func loadSmallFiles(t *testing.T, tbl *lst.Table, partition string, n int, size int64) {
	t.Helper()
	specs := make([]lst.FileSpec, n)
	for i := range specs {
		specs[i] = lst.FileSpec{Partition: partition, SizeBytes: size, RowCount: size / 100}
	}
	if _, err := tbl.AppendFiles(specs); err != nil {
		t.Fatal(err)
	}
}

func TestCompactTableReducesFiles(t *testing.T) {
	ex, tbl, _ := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 10, 50*mb)
	loadSmallFiles(t, tbl, "2024-02", 10, 50*mb)
	before := tbl.FileCount()
	res := ex.CompactTable(tbl)
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	if res.FilesRemoved != 20 || res.FilesAdded != 2 {
		t.Fatalf("removed %d, added %d", res.FilesRemoved, res.FilesAdded)
	}
	if got := tbl.FileCount(); got != before-res.Reduction() {
		t.Fatalf("file count %d -> %d, reduction %d", before, got, res.Reduction())
	}
	// Bytes conserved.
	if tbl.TotalBytes() != 20*50*mb {
		t.Fatalf("bytes = %d", tbl.TotalBytes())
	}
	// Compaction never crosses partitions: one output per partition.
	if len(tbl.FilesInPartition("2024-01")) != 1 || len(tbl.FilesInPartition("2024-02")) != 1 {
		t.Fatal("partition boundary violated")
	}
}

func TestCompactPartitionOnlyTouchesPartition(t *testing.T) {
	ex, tbl, _ := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 5, 50*mb)
	loadSmallFiles(t, tbl, "2024-02", 5, 50*mb)
	res := ex.CompactPartition(tbl, "2024-01")
	if !res.Succeeded() || res.FilesRemoved != 5 {
		t.Fatalf("result = %+v", res)
	}
	if got := len(tbl.FilesInPartition("2024-02")); got != 5 {
		t.Fatalf("other partition touched: %d files", got)
	}
}

func TestCompactSkipsWellSizedTable(t *testing.T) {
	ex, tbl, _ := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 3, 600*mb) // all above target
	res := ex.CompactTable(tbl)
	if !res.Skipped {
		t.Fatalf("expected skip, got %+v", res)
	}
	if res.GBHr != 0 {
		t.Fatalf("skip charged GBHr %v", res.GBHr)
	}
}

func TestCompactSkipsUnmergeableSingletons(t *testing.T) {
	ex, tbl, _ := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 1, 50*mb)
	res := ex.CompactTable(tbl)
	if !res.Skipped {
		t.Fatalf("lone small file should be skipped: %+v", res)
	}
}

func TestCompactChargesGBHrOnConflict(t *testing.T) {
	ex, tbl, clock := execSetup(t, true)
	loadSmallFiles(t, tbl, "2024-01", 10, 50*mb)
	loadSmallFiles(t, tbl, "2024-02", 2, 50*mb)
	// A whole-table rewrite touches every partition, so a concurrent
	// update on any partition invalidates it.
	op := ex.Start(tbl, TableScope, "")
	if _, err := tbl.OverwritePartition("2024-02", []lst.FileSpec{
		{Partition: "2024-02", SizeBytes: 100 * mb, RowCount: 100},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Set(op.CommitAt())
	res := op.Finish()
	if !res.Conflict || res.ConflictCount != 1 {
		t.Fatalf("expected one group conflict, got %+v", res)
	}
	if res.GBHr <= 0 {
		t.Fatal("conflicted op should still cost GBHr")
	}
	// Partial progress: the untouched 2024-01 group landed (10 → 1),
	// the overwritten 2024-02 group was dropped.
	if res.Reduction() != 9 {
		t.Fatalf("partial reduction = %d, want 9", res.Reduction())
	}
	if got := len(tbl.FilesInPartition("2024-01")); got != 1 {
		t.Fatalf("2024-01 files = %d, want 1", got)
	}
	if ex.Cluster.TotalGBHr() <= 0 {
		t.Fatal("cluster ledger missing wasted GBHr")
	}
}

func TestPartitionRewriteSurvivesDisjointUpdate(t *testing.T) {
	ex, tbl, clock := execSetup(t, true)
	loadSmallFiles(t, tbl, "2024-01", 10, 50*mb)
	loadSmallFiles(t, tbl, "2024-02", 2, 50*mb)
	// A partition-scope rewrite only races writes to its own partition.
	op := ex.Start(tbl, PartitionScope, "2024-01")
	if _, err := tbl.OverwritePartition("2024-02", []lst.FileSpec{
		{Partition: "2024-02", SizeBytes: 100 * mb, RowCount: 100},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Set(op.CommitAt())
	if res := op.Finish(); !res.Succeeded() {
		t.Fatalf("partition rewrite vs disjoint update conflicted: %+v", res)
	}
}

func TestStrictRewriteSurvivesConcurrentAppend(t *testing.T) {
	ex, tbl, clock := execSetup(t, true)
	loadSmallFiles(t, tbl, "2024-01", 10, 50*mb)
	op := ex.Start(tbl, TableScope, "")
	// Fast appends never invalidate a rewrite, even in strict mode.
	loadSmallFiles(t, tbl, "2024-02", 1, 50*mb)
	clock.Set(op.CommitAt())
	if res := op.Finish(); !res.Succeeded() {
		t.Fatalf("rewrite vs append conflicted: %+v", res)
	}
}

func TestRelaxedValidationAllowsConcurrentAppend(t *testing.T) {
	ex, tbl, clock := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 10, 50*mb)
	op := ex.Start(tbl, TableScope, "")
	loadSmallFiles(t, tbl, "2024-02", 1, 50*mb)
	clock.Set(op.CommitAt())
	res := op.Finish()
	if !res.Succeeded() {
		t.Fatalf("relaxed rewrite failed: %+v", res)
	}
}

func TestOpFinishIdempotent(t *testing.T) {
	ex, tbl, _ := execSetup(t, false)
	loadSmallFiles(t, tbl, "2024-01", 4, 50*mb)
	op := ex.Start(tbl, TableScope, "")
	r1 := op.Finish()
	r2 := op.Finish()
	if !r1.Succeeded() || r2.FilesRemoved != r1.FilesRemoved {
		t.Fatalf("finish not idempotent: %+v vs %+v", r1, r2)
	}
}

func TestMergeOnReadDeltasCompacted(t *testing.T) {
	clock := sim.NewClock()
	fs := storage.NewNameNode(storage.DefaultConfig(), clock, sim.NewRNG(1))
	tbl, _ := lst.NewTable(lst.TableConfig{Database: "db", Name: "mor", Mode: lst.MergeOnRead}, fs, clock)
	tbl.AppendFiles([]lst.FileSpec{{SizeBytes: 400 * mb, RowCount: 1000}})
	for i := 0; i < 5; i++ {
		tbl.AppendFiles([]lst.FileSpec{{SizeBytes: 5 * mb, RowCount: 10, IsDelta: true}})
	}
	ex := &Executor{
		Cluster:        cluster.New(cluster.CompactionClusterConfig(), clock),
		TargetFileSize: 512 * mb,
	}
	res := ex.CompactTable(tbl)
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	if tbl.DeltaFileCount() != 0 {
		t.Fatalf("deltas remain: %d", tbl.DeltaFileCount())
	}
}

func TestThresholdDefaultsToTarget(t *testing.T) {
	ex := &Executor{TargetFileSize: 512 * mb}
	if ex.threshold() != 512*mb {
		t.Fatalf("threshold = %d", ex.threshold())
	}
	ex.SmallFileThreshold = 128 * mb
	if ex.threshold() != 128*mb {
		t.Fatalf("threshold = %d", ex.threshold())
	}
}
