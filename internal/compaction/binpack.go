// Package compaction implements the compaction primitive the paper's act
// phase executes: Iceberg-style rewriteDataFiles. Small files are grouped
// with first-fit-decreasing bin packing up to a target file size and each
// group is rewritten into a single larger file via the LST's optimistic
// rewrite commit (which may conflict, §4.4).
//
// The executor runs the rewrite as a job on a compute cluster, so every
// compaction has a measured duration and GBHr cost; it also records the
// estimate-vs-actual gap the paper analyzes in §7 (Model Accuracy).
package compaction

import (
	"sort"

	"autocomp/internal/lst"
)

// Group is one bin of input files that will be rewritten into one output
// file.
type Group struct {
	Files []lst.DataFile
	Bytes int64
	Rows  int64
}

// Plan is a bin-packing plan over one partition (or an unpartitioned
// table's whole file set).
type Plan struct {
	Groups []Group
	// InputFiles counts files across all groups (singletons excluded).
	InputFiles int
	InputBytes int64
}

// OutputFiles returns how many files the plan produces.
func (p Plan) OutputFiles() int { return len(p.Groups) }

// Reduction returns the net file-count reduction the plan achieves.
func (p Plan) Reduction() int { return p.InputFiles - len(p.Groups) }

// PlanBinPack groups files into bins of at most target bytes using
// first-fit decreasing. Groups that end up with a single non-delta file
// are dropped: rewriting one file into one file yields no benefit. Delta
// files are always rewritten (merge-on-read debt must be merged), so a
// singleton group is kept when it contains a delta.
//
// Files of size >= target are never inputs here; callers filter to small
// files first (SelectSmall).
func PlanBinPack(files []lst.DataFile, target int64) Plan {
	if target <= 0 {
		panic("compaction: non-positive target file size")
	}
	sorted := make([]lst.DataFile, len(files))
	copy(sorted, files)
	// Decreasing size; ties broken by path for determinism (NFR2).
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].SizeBytes != sorted[j].SizeBytes {
			return sorted[i].SizeBytes > sorted[j].SizeBytes
		}
		return sorted[i].Path < sorted[j].Path
	})

	var bins []Group
	for _, f := range sorted {
		placed := false
		for i := range bins {
			if bins[i].Bytes+f.SizeBytes <= target {
				bins[i].Files = append(bins[i].Files, f)
				bins[i].Bytes += f.SizeBytes
				bins[i].Rows += f.RowCount
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, Group{
				Files: []lst.DataFile{f},
				Bytes: f.SizeBytes,
				Rows:  f.RowCount,
			})
		}
	}

	var plan Plan
	for _, b := range bins {
		if len(b.Files) == 1 && !b.Files[0].IsDelta {
			continue // no gain from rewriting a lone data file
		}
		plan.Groups = append(plan.Groups, b)
		plan.InputFiles += len(b.Files)
		plan.InputBytes += b.Bytes
	}
	return plan
}

// SelectSmall returns the files smaller than threshold plus all delta
// files (which compaction must merge regardless of size).
func SelectSmall(files []lst.DataFile, threshold int64) []lst.DataFile {
	var out []lst.DataFile
	for _, f := range files {
		if f.SizeBytes < threshold || f.IsDelta {
			out = append(out, f)
		}
	}
	return out
}

// EstimateReduction is the paper's ΔF_c estimator (§4.2): the number of
// files below the target size. It deliberately ignores partition
// boundaries when applied at table scope, which is the source of the
// overestimation the paper reports in §7.
func EstimateReduction(files []lst.DataFile, target int64) int {
	n := 0
	for _, f := range files {
		if f.SizeBytes < target {
			n++
		}
	}
	return n
}
