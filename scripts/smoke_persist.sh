#!/usr/bin/env bash
# Durable-storage smoke test: the kill -9 drill an operator would run
# before trusting the log backend. Phase 1 runs a clean 12-day daemon on
# the in-memory backend and keeps its decision trace as the golden.
# Phase 2 boots the same tenant on the durable log backend, runs 6 days,
# captures the management API's view of the fleet, and SIGKILLs the
# daemon. Phase 3 reboots from the same root and requires the restored
# fleet state to match the pre-kill capture. Phase 4 extends the run to
# 12 days and requires the recovered daemon's days 7-12 trace events to
# match the uninterrupted run's byte-for-byte (sequence numbers
# normalized: the rebooted tracer starts fresh).
#
# Run from the repository root: ./scripts/smoke_persist.sh
set -eu

workdir=$(mktemp -d)
lake="$workdir/lake"
log="$workdir/autocompd.log"
pid=""
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/autocompd" ./cmd/autocompd

# The durable policy is the shipped default plus a storage section —
# storage selection must not perturb decisions, which is exactly what
# the trace comparison below proves.
python3 - examples/policies/default.json "$workdir/durable.json" "$lake" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    spec = json.load(f)
spec["storage"] = {"backend": "log", "root": sys.argv[3]}
with open(sys.argv[2], "w") as f:
    json.dump(spec, f, indent=2)
EOF

# Phase 1: uninterrupted 12-day run on the memory backend.
"$workdir/autocompd" -tables 120 -days 12 -policy examples/policies/default.json \
  -trace "$workdir/clean.jsonl" >"$workdir/clean.log" 2>&1 \
  || { echo "smoke-persist: clean run failed"; cat "$workdir/clean.log"; exit 1; }
[ "$(wc -l <"$workdir/clean.jsonl")" = "12" ] \
  || { echo "smoke-persist: clean run traced $(wc -l <"$workdir/clean.jsonl") cycles, want 12"; exit 1; }
echo "smoke-persist: clean 12-day golden captured"

# Phase 2: 6 days on the log backend, then SIGKILL — no drain, no
# flush; whatever the store holds is all the next boot gets.
"$workdir/autocompd" -tables 120 -days 6 -policy "$workdir/durable.json" \
  -listen 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^telemetry: listening on \([0-9.:]*\).*/\1/p' "$log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke-persist: autocompd exited before announcing its address"; cat "$log"; exit 1; }
  sleep 0.2
done
[ -n "$addr" ] || { echo "smoke-persist: autocompd never announced its listen address"; cat "$log"; exit 1; }
grep -q "^storage plane: durable log at $lake" "$log" \
  || { echo "smoke-persist: boot report missing the storage plane"; cat "$log"; exit 1; }

for _ in $(seq 1 300); do
  grep -q "run complete" "$log" && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke-persist: durable run died"; cat "$log"; exit 1; }
  sleep 0.2
done
grep -q "run complete" "$log" || { echo "smoke-persist: durable run never completed"; cat "$log"; exit 1; }
curl -fsS "http://$addr/api/tenants/default" >"$workdir/prekill.json"
{ kill -9 "$pid" && wait "$pid"; } 2>/dev/null || true
pid=""
[ -f "$lake/tenants/default/fleet.json" ] \
  || { echo "smoke-persist: no persisted state under $lake after the kill"; exit 1; }
echo "smoke-persist: day-6 state captured, daemon SIGKILLed"

# Phase 3: reboot from the same root. The tenant restores at day 6, the
# run is already complete, and the daemon serves the recovered state.
"$workdir/autocompd" -tables 120 -days 6 -policy "$workdir/durable.json" \
  -listen 127.0.0.1:0 >"$log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^telemetry: listening on \([0-9.:]*\).*/\1/p' "$log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke-persist: reboot exited before announcing its address"; cat "$log"; exit 1; }
  sleep 0.2
done
for _ in $(seq 1 300); do
  grep -q "run complete" "$log" && break
  sleep 0.2
done
curl -fsS "http://$addr/api/tenants/default" >"$workdir/restored.json"
python3 - "$workdir/prekill.json" "$workdir/restored.json" <<'EOF'
import json, sys
pre = json.load(open(sys.argv[1]))
post = json.load(open(sys.argv[2]))
if post["day"] != 6 or pre["day"] != 6:
    sys.exit(f"restored day {post['day']}, pre-kill day {pre['day']}, want 6")
for key in ("fleet", "seed", "policy", "days_planned"):
    if pre[key] != post[key]:
        sys.exit(f"restored {key} diverged:\npre-kill: {pre[key]}\nrestored: {post[key]}")
EOF
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "smoke-persist: reboot recovered day-6 fleet state exactly"

# Phase 4: extend the recovered run to 12 days; its days 7-12 must
# replay identically to the uninterrupted run's.
"$workdir/autocompd" -tables 120 -days 12 -policy "$workdir/durable.json" \
  -trace "$workdir/post.jsonl" >"$workdir/post.log" 2>&1 \
  || { echo "smoke-persist: recovered run failed"; cat "$workdir/post.log"; exit 1; }
[ "$(wc -l <"$workdir/post.jsonl")" = "6" ] \
  || { echo "smoke-persist: recovered run traced $(wc -l <"$workdir/post.jsonl") cycles, want 6 (days 7-12)"; exit 1; }
norm='s/"seq":[0-9]*/"seq":0/'
tail -6 "$workdir/clean.jsonl" | sed "$norm" >"$workdir/clean.tail"
sed "$norm" "$workdir/post.jsonl" >"$workdir/post.norm"
cmp -s "$workdir/clean.tail" "$workdir/post.norm" || {
  echo "smoke-persist: recovered days 7-12 diverged from the uninterrupted run"
  diff "$workdir/clean.tail" "$workdir/post.norm" | head -10
  exit 1
}
echo "smoke-persist: recovered days 7-12 match the uninterrupted run byte-for-byte"

echo "smoke-persist: PASS"
