#!/usr/bin/env bash
# Tuning-plane smoke test: run a micro-budget `lakectl tune` of the
# shipped search space against the shipped tuning-micro scenario,
# assert the winner strictly improves the composite score over the
# default spec, validate the winner as a normal policy spec, and
# schema-check the JSONL trial log with `lakectl tune -check`.
#
# Run from the repository root: ./scripts/smoke_tune.sh
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

out="$workdir/tune.out"
go run ./cmd/lakectl tune -budget 8 -seed 1 \
  -out "$workdir/winner.json" \
  -report "$workdir/report.json" \
  -log "$workdir/trials.jsonl" \
  examples/tuning/space.json examples/scenarios/tuning-micro.json | tee "$out"

grep -q "strictly improves the composite score" "$out" \
  || { echo "smoke-tune: winner does not strictly improve over the default spec"; exit 1; }

# The winner is an ordinary policy spec: it must compile cleanly.
go run ./cmd/lakectl policy validate "$workdir/winner.json"

# The trial log must satisfy the JSONL schema (contiguous trials,
# params everywhere, positive composites, monotone best-so-far).
go run ./cmd/lakectl tune -check "$workdir/trials.jsonl"

# The report carries the provenance the docs promise.
for key in trajectory winner_diff best_composite improvement_pct; do
  grep -q "\"$key\"" "$workdir/report.json" \
    || { echo "smoke-tune: report is missing \"$key\""; exit 1; }
done

echo "smoke-tune: OK"
