#!/usr/bin/env bash
# Management-plane smoke test: boot autocompd as a serving daemon on an
# ephemeral port, then drive the HTTP control API end to end — create a
# second tenant next to the flag-built default, push a policy diff over
# the wire, submit a shipped scenario through the runs API and poll it
# to completion (asserting the trace matches the committed golden), and
# finish with a graceful SIGTERM drain.
#
# Run from the repository root: ./scripts/smoke_mgmt.sh
set -eu

workdir=$(mktemp -d)
log="$workdir/autocompd.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/autocompd" ./cmd/autocompd
go build -o "$workdir/lakectl" ./cmd/lakectl

# A short default-tenant run: the daemon keeps serving after it ends.
"$workdir/autocompd" -days 2 -listen 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^telemetry: listening on \([0-9.:]*\).*/\1/p' "$log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke-mgmt: autocompd exited before announcing its address"; cat "$log"; exit 1; }
  sleep 0.2
done
[ -n "$addr" ] || { echo "smoke-mgmt: autocompd never announced its listen address"; cat "$log"; exit 1; }
echo "smoke-mgmt: autocompd management API on $addr"

# The flag-built default tenant is served by the API.
curl -fsS "http://$addr/api/tenants" | grep -q '"name": "default"' \
  || { echo "smoke-mgmt: default tenant missing from GET /api/tenants"; exit 1; }
echo "smoke-mgmt: default tenant listed"

# Create a second tenant with its own seed and topology.
code=$(curl -sS -o "$workdir/create.json" -w '%{http_code}' -X POST "http://$addr/api/tenants" \
  -d '{"name":"t2","seed":7,"days":3,"initial_tables":40}')
[ "$code" = "201" ] || { echo "smoke-mgmt: create tenant returned $code"; cat "$workdir/create.json"; exit 1; }
echo "smoke-mgmt: second tenant created"

# Both tenants render in lakectl's remote table.
"$workdir/lakectl" tenants "$addr" | grep -q "t2" \
  || { echo "smoke-mgmt: lakectl tenants did not list t2"; exit 1; }
echo "smoke-mgmt: lakectl tenants ok"

# Push a different shipped policy to t2 and require a non-empty diff.
"$workdir/lakectl" policy push "$addr" t2 examples/policies/metadata-heavy.json >"$workdir/push.out" \
  || { echo "smoke-mgmt: policy push failed"; cat "$workdir/push.out"; exit 1; }
grep -q . "$workdir/push.out" || { echo "smoke-mgmt: policy push printed nothing"; exit 1; }
curl -fsS "http://$addr/api/tenants/t2/policy" | grep -q '"name": "metadata-heavy"' \
  || { echo "smoke-mgmt: pushed policy not reported by GET /policy"; exit 1; }
echo "smoke-mgmt: policy push ok (diff staged for next cycle boundary)"

# An invalid policy is rejected with the compile error, 422.
code=$(curl -sS -o "$workdir/badpush.json" -w '%{http_code}' -X PUT "http://$addr/api/tenants/t2/policy" \
  -d '{"name":"bad","generators":[{"name":"no-such-generator"}]}')
[ "$code" = "422" ] || { echo "smoke-mgmt: invalid policy push returned $code, want 422"; exit 1; }
grep -q "no-such-generator" "$workdir/badpush.json" \
  || { echo "smoke-mgmt: 422 body does not carry the compile error"; cat "$workdir/badpush.json"; exit 1; }
echo "smoke-mgmt: invalid policy rejected with compile errors"

# Submit a shipped scenario through the runs API and poll to done.
code=$(curl -sS -o "$workdir/run.json" -w '%{http_code}' -X POST "http://$addr/api/tenants/t2/runs" \
  -d '{"scenario":"steady-state"}')
[ "$code" = "202" ] || { echo "smoke-mgmt: run submit returned $code"; cat "$workdir/run.json"; exit 1; }
run_id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/run.json" | head -1)
[ -n "$run_id" ] || { echo "smoke-mgmt: run submit returned no id"; cat "$workdir/run.json"; exit 1; }

status=""
for _ in $(seq 1 300); do
  status=$(curl -fsS "http://$addr/api/tenants/t2/runs/$run_id" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
  [ "$status" = "done" ] && break
  [ "$status" = "failed" ] && { echo "smoke-mgmt: run failed"; curl -fsS "http://$addr/api/tenants/t2/runs/$run_id"; exit 1; }
  sleep 0.2
done
[ "$status" = "done" ] || { echo "smoke-mgmt: run never completed (status=$status)"; exit 1; }
echo "smoke-mgmt: API-submitted run $run_id completed"

# The run's trace is byte-identical to the committed golden.
curl -fsS "http://$addr/api/tenants/t2/runs/$run_id/trace" >"$workdir/trace.out"
cmp -s "$workdir/trace.out" examples/scenarios/golden/steady-state.trace \
  || { echo "smoke-mgmt: API run trace differs from committed golden"; exit 1; }
echo "smoke-mgmt: run trace matches committed golden byte-for-byte"

# Graceful shutdown: SIGTERM drains tenants and exits cleanly.
kill -TERM "$pid"
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "smoke-mgmt: daemon did not exit after SIGTERM"; exit 1
fi
wait "$pid" 2>/dev/null || true
grep -q "signal received" "$log" || { echo "smoke-mgmt: no drain message in log"; cat "$log"; exit 1; }
echo "smoke-mgmt: graceful shutdown ok"

echo "smoke-mgmt: PASS"
