#!/usr/bin/env bash
# Telemetry-plane smoke test: boot autocompd with -listen on an ephemeral
# port, wait for the short run to complete, then verify the operational
# endpoints end to end — /healthz answers, /metrics speaks Prometheus
# text format with every instrumented layer represented, /statusz carries
# the decision trace, and `lakectl status` can render it.
#
# Run from the repository root: ./scripts/smoke_metrics.sh
set -eu

workdir=$(mktemp -d)
log="$workdir/autocompd.log"
metrics="$workdir/metrics.txt"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/autocompd" ./cmd/autocompd

"$workdir/autocompd" -days 2 -listen 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^telemetry: listening on \([0-9.:]*\).*/\1/p' "$log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "smoke: autocompd exited before announcing its address"; cat "$log"; exit 1; }
  sleep 0.2
done
[ -n "$addr" ] || { echo "smoke: autocompd never announced its listen address"; cat "$log"; exit 1; }
echo "smoke: autocompd telemetry on $addr"

# Wait for the run to finish so every instrumented layer has published.
for _ in $(seq 1 300); do
  grep -q "run complete" "$log" && break
  sleep 0.2
done
grep -q "run complete" "$log" || { echo "smoke: run never completed"; cat "$log"; exit 1; }

# /healthz
curl -fsS "http://$addr/healthz" | grep -qx "ok" || { echo "smoke: /healthz did not answer ok"; exit 1; }
echo "smoke: /healthz ok"

# /metrics: Prometheus exposition with every layer's families present.
curl -fsS "http://$addr/metrics" >"$metrics"
for fam in \
  autocomp_core_cycles_total \
  autocomp_core_decide_latency_seconds \
  autocomp_core_actions_total \
  autocomp_sched_jobs_total \
  autocomp_sched_cycle_makespan_seconds \
  autocomp_changefeed_events_total \
  autocomp_changefeed_cache_hits_total \
  autocomp_fleet_files \
  autocomp_fleet_tables; do
  grep -q "^# TYPE $fam " "$metrics" || { echo "smoke: /metrics missing family $fam"; exit 1; }
done
families=$(grep -c '^# TYPE' "$metrics")
[ "$families" -ge 25 ] || { echo "smoke: only $families metric families (need >= 25)"; exit 1; }
echo "smoke: /metrics serves $families families"

# /statusz: the daemon reports itself done with cycles traced.
curl -fsS "http://$addr/statusz" >"$workdir/statusz.json"
grep -q '"done": true' "$workdir/statusz.json" || { echo "smoke: /statusz not done"; exit 1; }
echo "smoke: /statusz ok"

# lakectl status renders the scraped trace.
go run ./cmd/lakectl status "$addr" | grep -q "^day " || { echo "smoke: lakectl status printed no cycles"; exit 1; }
echo "smoke: lakectl status ok"

echo "smoke: PASS"
