// Package autocomp is the public facade of the AutoComp framework: a
// scalable system for automatic data compaction in log-structured tables
// (LSTs), reproducing "AutoComp: Automated Data Compaction for
// Log-Structured Tables in Data Lakes" (SIGMOD 2025).
//
// AutoComp organizes compaction as an Observe–Orient–Decide–Act pipeline:
// candidates (tables, partitions, or fresh-snapshot file sets) are
// observed into standardized statistics, oriented into decision traits
// (estimated file-count reduction ΔF, compute cost GBHr, file entropy,
// quota pressure), ranked by a threshold policy or a scalarized
// multi-objective function, selected by fixed k or a compute budget, and
// executed under a conflict-aware schedule. Every stage is pluggable.
//
// The quickest way in:
//
//	svc, err := autocomp.New(autocomp.Options{
//		Catalog:  cp,       // *catalog.ControlPlane (OpenHouse-style)
//		Cluster:  compCl,   // *cluster.Cluster for rewrite jobs
//		TargetFileSize: 512 << 20,
//		TopK:     10,
//	})
//	report, err := svc.RunOnce()
//
// For full control, assemble core.Config yourself; this package only
// re-exports the common pieces.
package autocomp

import (
	"time"

	"autocomp/internal/catalog"
	"autocomp/internal/cluster"
	"autocomp/internal/compaction"
	"autocomp/internal/core"
)

// Re-exported core types: the OODA pipeline's building blocks.
type (
	// Service is a configured AutoComp instance.
	Service = core.Service
	// Config is the full pipeline wiring (advanced use).
	Config = core.Config
	// Report is the outcome of one compaction cycle.
	Report = core.Report
	// Decision is the observe–orient–decide output.
	Decision = core.Decision
	// Candidate is a unit of compaction work.
	Candidate = core.Candidate
	// Stats is the observe-phase statistics layout.
	Stats = core.Stats
	// Trait turns stats into a ranking signal.
	Trait = core.Trait
	// Filter refines the candidate pool.
	Filter = core.Filter
	// Ranker orders candidates (threshold or MOOP).
	Ranker = core.Ranker
	// Selector picks the work set (top-k or budget).
	Selector = core.Selector
	// Scheduler plans execution rounds.
	Scheduler = core.Scheduler
	// Runner executes one work unit.
	Runner = core.Runner
	// Table is the connector-facing table abstraction.
	Table = core.Table
	// Connector feeds lake state to the framework.
	Connector = core.Connector
	// EstimatorLedger tracks estimate-vs-actual accuracy via feedback.
	EstimatorLedger = core.EstimatorLedger
	// PeriodicTrigger schedules pull-based compaction cycles.
	PeriodicTrigger = core.PeriodicTrigger
	// AfterWriteHook is the push-based optimize-after-write trigger.
	AfterWriteHook = core.AfterWriteHook
)

// Re-exported strategy components.
var (
	// NewService validates and builds a Service from a full Config.
	NewService = core.NewService
	// QuotaAdaptiveWeights is the production weighting w1=0.5(1+u).
	QuotaAdaptiveWeights = core.QuotaAdaptiveWeights
)

// Scope constants for candidate generation.
const (
	ScopeTable     = core.ScopeTable
	ScopePartition = core.ScopePartition
	ScopeSnapshot  = core.ScopeSnapshot
)

// Options configures the convenience constructor New: an OpenHouse-style
// deployment with the paper's production defaults (§7) — table-scope
// candidates, ΔF + GBHr traits, quota-adaptive MOOP weights, and top-k or
// budget selection.
type Options struct {
	// Catalog is the control plane holding the tables.
	Catalog *catalog.ControlPlane
	// Cluster runs the rewrite jobs (a dedicated compaction cluster in
	// the paper's deployment).
	Cluster *cluster.Cluster

	// TargetFileSize is the compaction target (default 512 MB).
	TargetFileSize int64

	// TopK fixes the number of work units per cycle. If BudgetGBHr is
	// set instead, k is chosen dynamically to fill the budget.
	TopK       int
	BudgetGBHr float64

	// HybridScope switches to partition-scope work units on partitioned
	// tables (§6's hybrid strategy). Default is table scope.
	HybridScope bool

	// BenefitWeight/CostWeight are static MOOP weights (default
	// 0.7/0.3). When QuotaAdaptive is true, w1 follows §7's
	// 0.5×(1+quota utilization) instead.
	BenefitWeight float64
	CostWeight    float64
	QuotaAdaptive bool

	// MinTableAge skips recently created tables (default 24h).
	MinTableAge time.Duration
	// MinSmallFiles skips candidates with fewer small files (default 2).
	MinSmallFiles int

	// OnReport hooks receive each cycle's report (feedback loop).
	OnReport []func(*Report)
}

// New builds a Service over an OpenHouse-style catalog with the paper's
// production configuration.
func New(opts Options) (*Service, error) {
	if opts.TargetFileSize <= 0 {
		opts.TargetFileSize = 512 << 20
	}
	if opts.BenefitWeight == 0 && opts.CostWeight == 0 {
		opts.BenefitWeight, opts.CostWeight = 0.7, 0.3
	}
	if opts.MinTableAge == 0 {
		opts.MinTableAge = 24 * time.Hour
	}
	if opts.MinSmallFiles == 0 {
		opts.MinSmallFiles = 2
	}

	clock := opts.Catalog.Clock()
	exec := &compaction.Executor{
		Cluster:        opts.Cluster,
		TargetFileSize: opts.TargetFileSize,
		AppPrefix:      "compaction/",
	}
	ccfg := opts.Cluster.Config()
	slots := float64(ccfg.Executors * ccfg.ExecutorCores)
	perSlot := 1 / (1/ccfg.ScanBytesPerSec + 1/ccfg.WriteBytesPerSec)
	cost := core.ComputeCost{
		ExecutorMemoryGB:    ccfg.ExecutorMemoryGB * float64(ccfg.Executors),
		RewriteBytesPerHour: perSlot * slots * 3600,
	}

	var gen core.Generator = core.TableScopeGenerator{}
	if opts.HybridScope {
		gen = core.HybridScopeGenerator{}
	}
	var sel core.Selector = core.SelectAll{}
	switch {
	case opts.BudgetGBHr > 0:
		sel = core.BudgetSelector{BudgetGBHr: opts.BudgetGBHr}
	case opts.TopK > 0:
		sel = core.TopK{K: opts.TopK}
	}
	ranker := core.MOOPRanker{Objectives: []core.Objective{
		{Trait: core.FileCountReduction{}, Weight: opts.BenefitWeight},
		{Trait: cost, Weight: opts.CostWeight},
	}}
	if opts.QuotaAdaptive {
		ranker.DynamicWeights = core.QuotaAdaptiveWeights()
	}

	return core.NewService(core.Config{
		Connector: core.CatalogConnector{CP: opts.Catalog},
		Generator: gen,
		PreFilters: []core.Filter{
			core.MinTableAge{Min: opts.MinTableAge, Now: clock.Now},
			core.NotIntermediate{},
		},
		Observer: core.StatsObserver{
			TargetFileSize: opts.TargetFileSize,
			Quota:          opts.Catalog.QuotaUtilization,
			Now:            clock.Now,
		},
		StatsFilters: []core.Filter{core.MinSmallFiles{Min: opts.MinSmallFiles}},
		Traits:       []core.Trait{core.FileCountReduction{}, cost},
		Ranker:       ranker,
		Selector:     sel,
		Scheduler:    core.TablesParallelPartitionsSequential{},
		Runner:       core.ExecutorRunner{Exec: exec},
		OnReport:     opts.OnReport,
	})
}
